package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"swtnas/internal/apps"
	"swtnas/internal/checkpoint"
	"swtnas/internal/core"
	"swtnas/internal/data"
	"swtnas/internal/nas"
	"swtnas/internal/nn"
	"swtnas/internal/obs"
	"swtnas/internal/parallel"
	"swtnas/internal/sim"
	"swtnas/internal/tensor"
)

// Cluster telemetry (internal/obs, disabled by default): per-RPC round-trip
// latency as seen by workers (includes NextTask's queue-blocking time, the
// worker-idle signal), call/error counts, dial retries, the local execution
// time of each shipped candidate, and the coordinator's fault-tolerance
// decisions (requeues, quarantines, re-admissions, exhausted tasks).
// Coordinator-side RPC traffic is additionally labeled per worker id (see
// obs.Labeled) so requeue/quarantine decisions are attributable.
var (
	mRPCSeconds  = obs.GetHistogram("cluster.rpc.seconds", obs.DurationBuckets)
	mRPCCalls    = obs.GetCounter("cluster.rpc.calls")
	mRPCErrors   = obs.GetCounter("cluster.rpc.errors")
	mRPCRetries  = obs.GetCounter("cluster.rpc.retries")
	mExecSeconds = obs.GetHistogram("cluster.exec.seconds", obs.DurationBuckets)

	mTasksRequeued    = obs.GetCounter("cluster.tasks.requeued")
	mTasksFailed      = obs.GetCounter("cluster.tasks.failed")
	mResultsDuplicate = obs.GetCounter("cluster.results.duplicate")
	mQuarantined      = obs.GetCounter("cluster.workers.quarantined")
	mReadmitted       = obs.GetCounter("cluster.workers.readmitted")
	mInflightGauge    = obs.GetGauge("cluster.tasks.inflight")
	mHeartbeats       = obs.GetCounter("cluster.heartbeats")
	mSpeculated       = obs.GetCounter("cluster.tasks.speculated")
	mSpeculationWon   = obs.GetCounter("cluster.speculation.won")
)

// Worker.Run dial schedule; vars so tests can shrink the timing.
var (
	dialAttempts = 5
	dialDelay    = 100 * time.Millisecond
)

// dialRetry dials the coordinator, retrying on failure: workers commonly
// start before the coordinator finishes binding its listener.
func dialRetry(addr string) (*rpc.Client, error) {
	var lastErr error
	for i := 0; i < dialAttempts; i++ {
		if i > 0 {
			mRPCRetries.Inc()
			time.Sleep(dialDelay)
		}
		client, err := rpc.Dial("tcp", addr)
		if err == nil {
			return client, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// call wraps client.Call with round-trip telemetry.
func call(client *rpc.Client, method string, args, reply any) error {
	t := mRPCSeconds.Start()
	err := client.Call(method, args, reply)
	mRPCCalls.Inc()
	if err != nil {
		mRPCErrors.Inc()
		return err
	}
	t.Stop()
	return nil
}

// RPCTask ships one candidate evaluation to a remote worker. Tasks are
// self-contained: the worker regenerates the (deterministic) dataset from
// App/DataSeed and receives the provider checkpoint inline, so workers need
// no shared file system — the role the paper's parallel FS plays is taken by
// the coordinator's store.
type RPCTask struct {
	// Shutdown tells the worker to exit its task loop.
	Shutdown bool
	// ID is the candidate number.
	ID int
	// App names the application; DataSeed / TrainN / ValN reproduce its
	// dataset on the worker.
	App           string
	DataSeed      int64
	TrainN, ValN  int
	Arch          []int
	Seed          int64
	Matcher       string // "", "LP", "LCS"
	Parent        []byte // encoded provider checkpoint, nil for scratch
	PartialEpochs int
	BatchSizeHint int // 0 -> space default
	// DType selects the worker-side training element type ("", "f64" or
	// "f32", the tensor.ParseDType spellings). Candidates build and
	// weight-transfer in float64 on the worker exactly like the in-process
	// evaluator, then train natively in the requested dtype; the returned
	// checkpoint is dtype-tagged (SWTC v3 for f32).
	DType string
	// DeadlineMillis, when positive, bounds the worker-side evaluation: the
	// worker trains under a context with this timeout and reports a task
	// error when it expires (the coordinator then retries or fails the
	// candidate). Mirrors FaultConfig.TaskDeadline on the worker side.
	DeadlineMillis int64
	// KernelWorkers, when positive, sets the worker's kernel-pool width for
	// this task (the per-evaluator share of a node's core budget, mirroring
	// the in-process evaluator×kernel split). 0 leaves the worker's pool
	// untouched; a Worker with its own KernelWorkers pin ignores it.
	KernelWorkers int
}

// RPCResult returns a scored candidate to the coordinator.
type RPCResult struct {
	ID          int
	WorkerID    string
	Score       float64
	Params      int
	Copied      int
	TrainMillis float64
	Checkpoint  []byte
	Err         string
	// Failed marks a terminal failure emitted by the coordinator after the
	// task exhausted its retry budget; plain worker errors (Err set,
	// Failed false) are retried internally and never reach Results.
	Failed bool
	// Attempts counts the executions the task consumed (retries included).
	Attempts int
}

// FaultConfig tunes the coordinator's failure detection and retry policy.
// The zero value selects the defaults noted on each field; tests shrink the
// timings to milliseconds.
type FaultConfig struct {
	// HeartbeatTimeout quarantines a worker that has been silent (no
	// NextTask/Submit/Heartbeat) for longer than this; its in-flight tasks
	// requeue to healthy workers. A quarantined worker that heartbeats
	// again is re-admitted. Default 15s.
	HeartbeatTimeout time.Duration
	// TaskDeadline requeues a task that has been running on one worker for
	// longer than this (stall detection, independent of heartbeats).
	// 0 disables per-task deadlines.
	TaskDeadline time.Duration
	// MaxAttempts bounds the executions one task may consume before the
	// coordinator surfaces it as a Failed result instead of retrying.
	// Default 3.
	MaxAttempts int
	// RetryBackoff delays a requeued task's re-dispatch, doubling per
	// consumed attempt. Default 100ms.
	RetryBackoff time.Duration
	// MonitorInterval is the failure-detector scan period. Default 250ms.
	MonitorInterval time.Duration
	// SpeculativeQuantile enables speculative re-execution: once enough
	// results are in, a task whose elapsed runtime exceeds
	// SpeculationFactor times this quantile of recently completed
	// evaluation latencies gets a backup attempt on the next free worker —
	// first result wins, the loser's submission is dropped by the existing
	// duplicate scrubbing. 0 disables speculation (the default); the
	// paper-style straggler mitigation uses 0.9.
	SpeculativeQuantile float64
	// SpeculationFactor scales the quantile into the straggler threshold.
	// Default 1.5.
	SpeculationFactor float64
	// SpeculationMinSamples is how many completed evaluations the latency
	// window needs before speculation engages. Default 8.
	SpeculationMinSamples int
	// OnEvent, when set, observes every fault-tolerance decision the
	// coordinator takes — requeues, terminal failures, quarantines and
	// re-admissions — as nas.FaultEvent values. Events are delivered outside
	// the coordinator's lock, in decision order, from whichever goroutine
	// took the decision; the callback must be safe for concurrent use and
	// must not block (it runs on the RPC and failure-detector paths).
	OnEvent func(nas.FaultEvent)
}

func (f FaultConfig) withDefaults() FaultConfig {
	if f.HeartbeatTimeout <= 0 {
		f.HeartbeatTimeout = 15 * time.Second
	}
	if f.MaxAttempts <= 0 {
		f.MaxAttempts = 3
	}
	if f.RetryBackoff <= 0 {
		f.RetryBackoff = 100 * time.Millisecond
	}
	if f.MonitorInterval <= 0 {
		f.MonitorInterval = 250 * time.Millisecond
	}
	if f.SpeculationFactor <= 0 {
		f.SpeculationFactor = 1.5
	}
	if f.SpeculationMinSamples <= 0 {
		f.SpeculationMinSamples = 8
	}
	return f
}

// inflightTask is one task assigned to a worker and not yet resolved.
type inflightTask struct {
	task     RPCTask
	worker   string
	started  time.Time
	attempts int // executions consumed, including this one
}

// queuedTask is a task waiting for a worker (attempts already consumed).
// speculative marks a backup copy racing a still-running original; it is
// tracked outside the retry budget.
type queuedTask struct {
	task        RPCTask
	attempts    int
	speculative bool
}

// delayedTask is a requeued task serving its retry backoff.
type delayedTask struct {
	task     RPCTask
	attempts int
	readyAt  time.Time
}

// workerState is the coordinator's liveness view of one worker.
type workerState struct {
	lastBeat    time.Time
	quarantined bool
}

// Coordinator is the scheduler-side RPC endpoint: workers poll NextTask,
// push Submit, and report liveness via Heartbeat. It is the stand-in for
// DeepHyper's Ray head node, hardened for worker preemption: tasks whose
// worker crashes or stalls are requeued (bounded attempts with backoff) and
// dead workers are quarantined until they heartbeat again.
type Coordinator struct {
	cfg FaultConfig

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []queuedTask
	delayed  []delayedTask
	inflight map[int]*inflightTask
	workers  map[string]*workerState
	done     map[int]bool
	shutdown bool

	// Speculative re-execution state: a sliding window of completed
	// evaluation latencies (the threshold base), backup attempts in flight
	// (kept apart from inflight so the original's tracking survives), and
	// the tasks that already consumed their one backup.
	latencies    []time.Duration
	specInflight map[int]*inflightTask
	speculated   map[int]bool

	monitorOnce sync.Once
	stopMonitor chan struct{}

	results chan RPCResult

	// pending buffers fault events recorded under mu; emitMu serializes
	// their delivery to cfg.OnEvent so observers see decision order even
	// when RPC goroutines and the failure detector flush concurrently.
	pending []nas.FaultEvent
	emitMu  sync.Mutex
}

// emitLocked queues a fault event for delivery; callers hold c.mu and must
// call flushEvents after unlocking.
func (c *Coordinator) emitLocked(ev nas.FaultEvent) {
	if c.cfg.OnEvent != nil {
		c.pending = append(c.pending, ev)
	}
}

// flushEvents delivers queued fault events outside c.mu, preserving the
// order the decisions were taken in.
func (c *Coordinator) flushEvents() {
	if c.cfg.OnEvent == nil {
		return
	}
	c.emitMu.Lock()
	defer c.emitMu.Unlock()
	c.mu.Lock()
	evs := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, ev := range evs {
		c.cfg.OnEvent(ev)
	}
}

// NewCoordinator creates a coordinator with the default fault policy.
func NewCoordinator() *Coordinator { return NewCoordinatorWith(FaultConfig{}) }

// NewCoordinatorWith creates a coordinator with an explicit fault policy.
func NewCoordinatorWith(cfg FaultConfig) *Coordinator {
	c := &Coordinator{
		cfg:          cfg.withDefaults(),
		inflight:     map[int]*inflightTask{},
		workers:      map[string]*workerState{},
		done:         map[int]bool{},
		specInflight: map[int]*inflightTask{},
		speculated:   map[int]bool{},
		stopMonitor:  make(chan struct{}),
		results:      make(chan RPCResult, 64),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Enqueue adds a task for the next free worker and starts the failure
// detector on first use.
func (c *Coordinator) Enqueue(t RPCTask) {
	c.monitorOnce.Do(func() { go c.monitor() })
	c.mu.Lock()
	c.queue = append(c.queue, queuedTask{task: t, attempts: 0})
	c.mu.Unlock()
	c.cond.Signal()
}

// Results streams terminal task outcomes: one per enqueued task, either a
// worker's successful submission or a coordinator-synthesized Failed result
// after the retry budget is exhausted. Duplicate submissions (a stalled
// worker finishing after its task was requeued and re-run) are dropped.
func (c *Coordinator) Results() <-chan RPCResult { return c.results }

// Shutdown makes every pending and future NextTask return a shutdown task
// and stops the failure detector.
func (c *Coordinator) Shutdown() {
	c.monitorOnce.Do(func() { go c.monitor() }) // ensure stopMonitor has a consumer
	c.mu.Lock()
	if !c.shutdown {
		c.shutdown = true
		close(c.stopMonitor)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// beatLocked records worker liveness, re-admitting it from quarantine.
// Callers hold c.mu.
func (c *Coordinator) beatLocked(workerID string) {
	ws := c.workers[workerID]
	if ws == nil {
		ws = &workerState{}
		c.workers[workerID] = ws
	}
	ws.lastBeat = time.Now()
	if ws.quarantined {
		ws.quarantined = false
		mReadmitted.Inc()
		obs.GetCounter(obs.Labeled("cluster.coord.readmitted", "worker", workerID)).Inc()
		c.emitLocked(nas.FaultEvent{Kind: nas.FaultReadmit, Worker: workerID, CandidateID: -1})
	}
}

// requeueLocked returns a resolved-but-unfinished task to the schedule: a
// retry with backoff while attempts remain, a synthesized Failed result
// otherwise. It returns the terminal result to send (nil for a retry);
// callers hold c.mu and must send after unlocking.
func (c *Coordinator) requeueLocked(t RPCTask, attempts int, reason string) *RPCResult {
	if c.done[t.ID] {
		return nil
	}
	if attempts >= c.cfg.MaxAttempts {
		c.done[t.ID] = true
		mTasksFailed.Inc()
		c.emitLocked(nas.FaultEvent{Kind: nas.FaultFailed, CandidateID: t.ID, Reason: reason, Attempt: attempts})
		return &RPCResult{ID: t.ID, WorkerID: "coordinator", Err: reason, Failed: true, Attempts: attempts}
	}
	backoff := c.cfg.RetryBackoff << (attempts - 1)
	c.delayed = append(c.delayed, delayedTask{task: t, attempts: attempts, readyAt: time.Now().Add(backoff)})
	mTasksRequeued.Inc()
	c.emitLocked(nas.FaultEvent{Kind: nas.FaultRequeue, CandidateID: t.ID, Reason: reason, Attempt: attempts})
	return nil
}

// monitor is the failure detector: it quarantines silent workers (requeuing
// their in-flight tasks), enforces per-task deadlines, and moves requeued
// tasks whose backoff elapsed back into the dispatch queue.
func (c *Coordinator) monitor() {
	ticker := time.NewTicker(c.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var failed []RPCResult
		c.mu.Lock()
		// Quarantine workers that stopped heartbeating and reclaim their
		// in-flight tasks.
		for id, ws := range c.workers {
			if ws.quarantined || now.Sub(ws.lastBeat) <= c.cfg.HeartbeatTimeout {
				continue
			}
			ws.quarantined = true
			mQuarantined.Inc()
			obs.GetCounter(obs.Labeled("cluster.coord.quarantined", "worker", id)).Inc()
			c.emitLocked(nas.FaultEvent{Kind: nas.FaultQuarantine, Worker: id, CandidateID: -1, Reason: "no heartbeat"})
			for tid, ift := range c.inflight {
				if ift.worker != id {
					continue
				}
				delete(c.inflight, tid)
				if res := c.requeueLocked(ift.task, ift.attempts, fmt.Sprintf("worker %s presumed dead (no heartbeat)", id)); res != nil {
					failed = append(failed, *res)
				}
			}
			// A quarantined worker's backup attempts are simply dropped:
			// the originals are still tracked, so nothing is lost.
			for tid, spec := range c.specInflight {
				if spec.worker == id {
					delete(c.specInflight, tid)
				}
			}
		}
		// Per-task deadline: a task stuck on one worker is requeued even if
		// the worker still heartbeats (stalled evaluation).
		if c.cfg.TaskDeadline > 0 {
			for tid, ift := range c.inflight {
				if now.Sub(ift.started) <= c.cfg.TaskDeadline {
					continue
				}
				delete(c.inflight, tid)
				if res := c.requeueLocked(ift.task, ift.attempts, fmt.Sprintf("task deadline %s exceeded on worker %s", c.cfg.TaskDeadline, ift.worker)); res != nil {
					failed = append(failed, *res)
				}
			}
		}
		// Speculative re-execution: once the latency window is warm, any
		// task running past the calibrated quantile threshold gets one
		// backup attempt, queued ahead of regular work so the next free
		// worker picks it up (first result wins via duplicate scrubbing).
		speculated := false
		if c.cfg.SpeculativeQuantile > 0 && len(c.latencies) >= c.cfg.SpeculationMinSamples {
			threshold := time.Duration(float64(sim.DurationQuantile(c.latencies, c.cfg.SpeculativeQuantile)) * c.cfg.SpeculationFactor)
			if threshold > 0 {
				for tid, ift := range c.inflight {
					if c.done[tid] || c.speculated[tid] || now.Sub(ift.started) <= threshold {
						continue
					}
					c.speculated[tid] = true
					mSpeculated.Inc()
					c.queue = append([]queuedTask{{task: ift.task, attempts: ift.attempts, speculative: true}}, c.queue...)
					c.emitLocked(nas.FaultEvent{
						Kind:        nas.FaultSpeculate,
						Worker:      ift.worker,
						CandidateID: tid,
						Reason:      fmt.Sprintf("runtime exceeded %s (q%.2f x %.1f of %d samples)", threshold.Round(time.Millisecond), c.cfg.SpeculativeQuantile, c.cfg.SpeculationFactor, len(c.latencies)),
						Attempt:     ift.attempts,
					})
					speculated = true
				}
			}
		}
		// Release requeued tasks whose backoff elapsed.
		released := speculated
		keep := c.delayed[:0]
		for _, d := range c.delayed {
			if !d.readyAt.After(now) {
				c.queue = append(c.queue, queuedTask{task: d.task, attempts: d.attempts})
				released = true
			} else {
				keep = append(keep, d)
			}
		}
		c.delayed = keep
		mInflightGauge.Set(int64(len(c.inflight)))
		c.mu.Unlock()
		c.flushEvents()
		if released {
			c.cond.Broadcast()
		}
		for _, res := range failed {
			c.results <- res
		}
	}
}

// Service is the exported RPC receiver ("Service.NextTask",
// "Service.Submit", "Service.Heartbeat").
type Service struct {
	c *Coordinator
}

// NextTask blocks until a task or shutdown is available. net/rpc runs each
// call on its own goroutine, so blocking here parks only the asking worker.
// Asking for work counts as a heartbeat (and re-admits a quarantined
// worker: if it can ask, it is alive).
func (s *Service) NextTask(workerID string, reply *RPCTask) error {
	c := s.c
	defer c.flushEvents() // after the unlock below (defers run LIFO)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beatLocked(workerID)
	for len(c.queue) == 0 && !c.shutdown {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		*reply = RPCTask{Shutdown: true}
		return nil
	}
	qt := c.queue[0]
	c.queue = c.queue[1:]
	ift := &inflightTask{
		task:     qt.task,
		worker:   workerID,
		started:  time.Now(),
		attempts: qt.attempts + 1,
	}
	if qt.speculative {
		// A backup attempt races the original, which stays tracked in
		// inflight; the backup lives outside the retry budget.
		c.specInflight[qt.task.ID] = ift
	} else {
		c.inflight[qt.task.ID] = ift
	}
	c.beatLocked(workerID) // cond.Wait may have parked past the timeout
	mInflightGauge.Set(int64(len(c.inflight)))
	obs.GetCounter(obs.Labeled("cluster.coord.tasks.assigned", "worker", workerID)).Inc()
	*reply = qt.task
	return nil
}

// Heartbeat reports worker liveness; workers send it from a side goroutine
// so multi-minute evaluations do not read as death.
func (s *Service) Heartbeat(workerID string, ack *bool) error {
	c := s.c
	c.mu.Lock()
	c.beatLocked(workerID)
	c.mu.Unlock()
	c.flushEvents()
	mHeartbeats.Inc()
	obs.GetCounter(obs.Labeled("cluster.coord.heartbeats", "worker", workerID)).Inc()
	*ack = true
	return nil
}

// Submit delivers a result to the coordinator. Successful results resolve
// the task (late duplicates from requeued copies are dropped); worker-side
// errors consume an attempt and requeue, failing terminally only once the
// retry budget is spent.
func (s *Service) Submit(res RPCResult, ack *bool) error {
	c := s.c
	*ack = true
	var terminal *RPCResult
	c.mu.Lock()
	c.beatLocked(res.WorkerID)
	obs.GetCounter(obs.Labeled("cluster.coord.results", "worker", res.WorkerID)).Inc()
	switch {
	case c.done[res.ID]:
		// The race's loser arriving (a requeued task's original worker, or
		// the slower side of a speculation pair): drop the result, clear
		// its in-flight entry.
		mResultsDuplicate.Inc()
		if spec := c.specInflight[res.ID]; spec != nil && spec.worker == res.WorkerID {
			delete(c.specInflight, res.ID)
		} else if ift := c.inflight[res.ID]; ift != nil && ift.worker == res.WorkerID {
			delete(c.inflight, res.ID)
		}
	case res.Err != "":
		if spec := c.specInflight[res.ID]; spec != nil && spec.worker == res.WorkerID {
			// A failed backup is dropped, not retried: the original still
			// runs and owns the retry budget.
			delete(c.specInflight, res.ID)
		} else if ift := c.inflight[res.ID]; ift != nil && ift.worker == res.WorkerID {
			delete(c.inflight, res.ID)
			terminal = c.requeueLocked(ift.task, ift.attempts, res.Err)
		}
		// Otherwise another attempt is already queued or running; drop.
	default:
		backupWon := false
		if spec := c.specInflight[res.ID]; spec != nil && spec.worker == res.WorkerID {
			backupWon = true
			res.Attempts = spec.attempts
			delete(c.specInflight, res.ID)
			c.recordLatencyLocked(time.Since(spec.started))
		} else if ift := c.inflight[res.ID]; ift != nil {
			res.Attempts = ift.attempts
			delete(c.inflight, res.ID)
			c.recordLatencyLocked(time.Since(ift.started))
		}
		c.scrubLocked(res.ID)
		c.done[res.ID] = true
		if backupWon {
			mSpeculationWon.Inc()
			c.emitLocked(nas.FaultEvent{Kind: nas.FaultSpeculationWon, Worker: res.WorkerID, CandidateID: res.ID, Attempt: res.Attempts})
		}
		r := res
		terminal = &r
	}
	mInflightGauge.Set(int64(len(c.inflight)))
	c.mu.Unlock()
	c.flushEvents()
	if terminal != nil {
		c.results <- *terminal
	}
	return nil
}

// latencyWindow bounds the sliding sample of completed evaluation latencies
// that feeds the speculation threshold.
const latencyWindow = 128

// recordLatencyLocked appends a completed attempt's dispatch-to-result
// latency to the sliding window. Callers hold c.mu.
func (c *Coordinator) recordLatencyLocked(d time.Duration) {
	if c.cfg.SpeculativeQuantile <= 0 {
		return
	}
	c.latencies = append(c.latencies, d)
	if len(c.latencies) > latencyWindow {
		c.latencies = c.latencies[1:]
	}
}

// scrubLocked removes any queued or delayed copy of a resolved task (a
// requeued task whose original worker finished after all, or a speculative
// backup that never dispatched). Callers hold c.mu.
func (c *Coordinator) scrubLocked(id int) {
	keepQ := c.queue[:0]
	for _, qt := range c.queue {
		if qt.task.ID != id {
			keepQ = append(keepQ, qt)
		}
	}
	c.queue = keepQ
	keepD := c.delayed[:0]
	for _, d := range c.delayed {
		if d.task.ID != id {
			keepD = append(keepD, d)
		}
	}
	c.delayed = keepD
}

// Serve registers the coordinator service and accepts connections until the
// listener closes.
func (c *Coordinator) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.Register(&Service{c: c}); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Sentinel errors an ExecuteHook can return to simulate worker failures
// (used by resilience/faultinject; harmless in production workers, which
// never set a hook).
var (
	// ErrCrash makes the worker drop its coordinator connection and stop
	// heartbeating — from the coordinator's view, the process died.
	ErrCrash = errors.New("cluster: injected worker crash")
	// ErrDropResult makes the worker skip Submit for this one task but keep
	// serving (a lost result; the coordinator's deadline reclaims the task).
	ErrDropResult = errors.New("cluster: injected result drop")
)

// Worker executes tasks fetched from a coordinator. It caches one
// application per configuration so repeated tasks do not regenerate data.
type Worker struct {
	// ID labels the worker in results.
	ID string

	// KernelWorkers, when positive, pins this worker's kernel-pool width
	// for every task, overriding any RPCTask.KernelWorkers the coordinator
	// ships (an operator-set SWTNAS_WORKERS equivalent).
	KernelWorkers int

	// DType, when non-empty, is the training element type applied to tasks
	// that ship no RPCTask.DType (a coordinator predating the dtype field).
	// Tasks that do name a dtype always win, keeping mixed fleets
	// consistent. See DESIGN.md §14.
	DType string

	// HeartbeatEvery is the liveness-ping period Run uses while connected.
	// 0 selects the 2s default; negative disables heartbeats entirely
	// (tests simulating a silent stall).
	HeartbeatEvery time.Duration

	// ExecuteHook, when set, replaces Execute in Run's task loop. Returning
	// ErrCrash kills the connection and Run; ErrDropResult suppresses the
	// Submit. Any other error aborts Run with it. Fault-injection only.
	ExecuteHook func(RPCTask) (RPCResult, error)

	// Dial, when set, replaces the default TCP dial — faultinject wraps the
	// returned conn to corrupt or delay traffic deterministically.
	Dial func(addr string) (net.Conn, error)

	appMu  sync.Mutex
	appKey string
	app    *apps.App
	// f32Train/f32Val cache the float32 copy of the current app's dataset
	// (converted once per app, reused across f32 tasks; reset with the app).
	f32Train *nn.DataOf[float32]
	f32Val   *nn.DataOf[float32]
}

// kernelWorkersFor resolves the kernel-pool width for one task: the
// worker's own pin wins, then the task's coordinator-assigned share, then 0
// (leave the pool as-is).
func (w *Worker) kernelWorkersFor(t RPCTask) int {
	if w.KernelWorkers > 0 {
		return w.KernelWorkers
	}
	return t.KernelWorkers
}

// appFor returns (building if needed) the application a task needs.
func (w *Worker) appFor(t RPCTask) (*apps.App, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", t.App, t.DataSeed, t.TrainN, t.ValN)
	w.appMu.Lock()
	defer w.appMu.Unlock()
	if w.appKey == key {
		return w.app, nil
	}
	app, err := apps.New(t.App, t.DataSeed, apps.Config{Data: data.Config{TrainN: t.TrainN, ValN: t.ValN}})
	if err != nil {
		return nil, err
	}
	w.appKey, w.app = key, app
	w.f32Train, w.f32Val = nil, nil
	return app, nil
}

// f32Dataset returns (converting and caching on first use) the float32 copy
// of the worker's current app dataset.
func (w *Worker) f32Dataset(app *apps.App) (*nn.DataOf[float32], *nn.DataOf[float32]) {
	w.appMu.Lock()
	defer w.appMu.Unlock()
	if w.f32Train == nil {
		w.f32Train = nn.ConvertData[float32](app.Dataset.Train)
		w.f32Val = nn.ConvertData[float32](app.Dataset.Val)
	}
	return w.f32Train, w.f32Val
}

// Execute runs one task locally (exported for tests and for embedding the
// worker in-process).
func (w *Worker) Execute(t RPCTask) RPCResult {
	defer mExecSeconds.Start().Stop()
	if k := w.kernelWorkersFor(t); k > 0 {
		// Scoped like the in-process auto-split: set for this evaluation,
		// restore after, so an operator's process-wide setting survives.
		prev := parallel.SetWorkers(k)
		defer parallel.SetWorkers(prev)
	}
	res := RPCResult{ID: t.ID, WorkerID: w.ID}
	fail := func(err error) RPCResult {
		res.Err = err.Error()
		return res
	}
	dtSpec := t.DType
	if dtSpec == "" {
		dtSpec = w.DType
	}
	dt, err := tensor.ParseDType(dtSpec)
	if err != nil {
		return fail(err)
	}
	app, err := w.appFor(t)
	if err != nil {
		return fail(err)
	}
	rng := rand.New(rand.NewSource(t.Seed))
	net, err := app.Space.Build(t.Arch, rng)
	if err != nil {
		return fail(err)
	}
	res.Params = net.ParamCount()
	if t.Matcher != "" && len(t.Parent) > 0 {
		m, ok := core.MatcherByName(t.Matcher)
		if !ok || m == nil {
			return fail(fmt.Errorf("cluster: unknown matcher %q", t.Matcher))
		}
		parent, err := checkpoint.Decode(bytes.NewReader(t.Parent))
		if err != nil {
			return fail(err)
		}
		stats, err := core.Transfer(m, parent.Sources(), net)
		if err != nil {
			return fail(err)
		}
		res.Copied = stats.Copied
	}
	epochs := t.PartialEpochs
	if epochs <= 0 {
		epochs = app.PartialEpochs
	}
	batch := t.BatchSizeHint
	if batch <= 0 {
		batch = app.Space.BatchSize
	}
	ctx := context.Background()
	if t.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	fitCfg := nn.FitConfig{Context: ctx, Epochs: epochs, BatchSize: batch, RNG: rng}
	var model *checkpoint.Model
	start := time.Now()
	if dt == tensor.F32 {
		// Same dtype boundary as the in-process evaluator: built and
		// warm-started in f64 above, converted once, trained natively in f32.
		net32, err := nn.ConvertNetwork[float32](net)
		if err != nil {
			return fail(err)
		}
		loss32, err := nn.ConvertLoss[float32](app.Space.Loss)
		if err != nil {
			return fail(err)
		}
		metric32, err := nn.ConvertMetric[float32](app.Space.Metric)
		if err != nil {
			return fail(err)
		}
		train32, val32 := w.f32Dataset(app)
		h, err := nn.Fit(net32, loss32, metric32, nn.NewAdamOf[float32](), train32, val32, fitCfg)
		res.TrainMillis = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			return fail(err)
		}
		res.Score = h.FinalScore()
		model = checkpoint.FromNetworkOf(t.Arch, res.Score, net32)
	} else {
		h, err := nn.Fit(net, app.Space.Loss, app.Space.Metric, nn.NewAdam(),
			app.Dataset.Train, app.Dataset.Val, fitCfg)
		res.TrainMillis = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			return fail(err)
		}
		res.Score = h.FinalScore()
		model = checkpoint.FromNetwork(t.Arch, res.Score, net)
	}
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		return fail(err)
	}
	res.Checkpoint = buf.Bytes()
	return res
}

// dial opens the coordinator connection, honoring the Dial override.
func (w *Worker) dial(addr string) (*rpc.Client, error) {
	if w.Dial == nil {
		return dialRetry(addr)
	}
	var lastErr error
	for i := 0; i < dialAttempts; i++ {
		if i > 0 {
			mRPCRetries.Inc()
			time.Sleep(dialDelay)
		}
		conn, err := w.Dial(addr)
		if err == nil {
			return rpc.NewClient(conn), nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Run connects to the coordinator (retrying the dial — workers commonly
// start before the coordinator's listener is up) and processes tasks until
// shutdown. A side goroutine heartbeats every HeartbeatEvery so the
// coordinator distinguishes "evaluating a slow candidate" from "dead".
func (w *Worker) Run(addr string) error {
	client, err := w.dial(addr)
	if err != nil {
		return fmt.Errorf("cluster: worker %s dialing %s: %w", w.ID, addr, err)
	}
	defer client.Close()

	beatEvery := w.HeartbeatEvery
	if beatEvery == 0 {
		beatEvery = 2 * time.Second
	}
	stopBeats := make(chan struct{})
	defer close(stopBeats)
	if beatEvery > 0 {
		go func() {
			ticker := time.NewTicker(beatEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopBeats:
					return
				case <-ticker.C:
					var ack bool
					// Errors here mean the connection died; the task loop
					// will observe the same failure and exit.
					_ = call(client, "Service.Heartbeat", w.ID, &ack)
				}
			}
		}()
	}

	for {
		var task RPCTask
		if err := call(client, "Service.NextTask", w.ID, &task); err != nil {
			return fmt.Errorf("cluster: worker %s fetching task: %w", w.ID, err)
		}
		if task.Shutdown {
			return nil
		}
		var res RPCResult
		if w.ExecuteHook != nil {
			var err error
			res, err = w.ExecuteHook(task)
			switch {
			case errors.Is(err, ErrCrash):
				return nil // drop connection + heartbeats: simulated death
			case errors.Is(err, ErrDropResult):
				continue // lose the result, keep serving
			case err != nil:
				return fmt.Errorf("cluster: worker %s execute hook: %w", w.ID, err)
			}
		} else {
			res = w.Execute(task)
		}
		var ack bool
		if err := call(client, "Service.Submit", res, &ack); err != nil {
			return fmt.Errorf("cluster: worker %s submitting result: %w", w.ID, err)
		}
	}
}
