package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swtnas/internal/nas"
	"swtnas/internal/parallel"
)

// specCoordinator builds a coordinator with a fast monitor and speculation
// tuned for millisecond-scale tests.
func specCoordinator(rec *eventRecorder, quantile float64) *Coordinator {
	return NewCoordinatorWith(FaultConfig{
		HeartbeatTimeout:      10 * time.Second,
		MonitorInterval:       2 * time.Millisecond,
		RetryBackoff:          time.Millisecond,
		SpeculativeQuantile:   quantile,
		SpeculationFactor:     1.5,
		SpeculationMinSamples: 4,
		OnEvent:               rec.record,
	})
}

// warmLatencyWindow runs n quick tasks through worker id so the
// coordinator's latency window holds ~per-task duration samples.
func warmLatencyWindow(t *testing.T, svc *Service, id string, n int, dur time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		var task RPCTask
		if err := svc.NextTask(id, &task); err != nil {
			t.Fatal(err)
		}
		time.Sleep(dur)
		var ack bool
		if err := svc.Submit(RPCResult{ID: task.ID, WorkerID: id, Score: 1}, &ack); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpeculationFirstResultWins drives the coordinator directly: after a
// warm latency window, a straggling task must get a backup attempt
// (speculated event), the backup's result must win (speculation_won event),
// and the straggler's late submission must be dropped as a duplicate —
// exactly one terminal result per task.
func TestSpeculationFirstResultWins(t *testing.T) {
	rec := &eventRecorder{}
	c := specCoordinator(rec, 0.5)
	defer c.Shutdown()
	svc := &Service{c: c}

	const tasks = 5 // 4 warm-up + 1 straggler
	for i := 0; i < tasks; i++ {
		c.Enqueue(RPCTask{ID: i})
	}
	results := make(map[int]int)
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for i := 0; i < tasks; i++ {
			res := <-c.Results()
			results[res.ID]++
		}
	}()

	warmLatencyWindow(t, svc, "w0", 4, 15*time.Millisecond)

	// w0 takes the straggler and stalls; the monitor must launch a backup
	// once ~1.5x the median warm-up latency elapses.
	var straggler RPCTask
	if err := svc.NextTask("w0", &straggler); err != nil {
		t.Fatal(err)
	}
	ev := rec.await(t, "speculated", func(ev nas.FaultEvent) bool { return ev.Kind == nas.FaultSpeculate })
	if ev.CandidateID != straggler.ID || ev.Worker != "w0" {
		t.Fatalf("speculated event = %+v, want candidate %d on w0", ev, straggler.ID)
	}

	// A second worker picks up the backup copy of the same task and wins.
	var backup RPCTask
	if err := svc.NextTask("w1", &backup); err != nil {
		t.Fatal(err)
	}
	if backup.ID != straggler.ID {
		t.Fatalf("backup task = %d, want straggler %d", backup.ID, straggler.ID)
	}
	var ack bool
	if err := svc.Submit(RPCResult{ID: backup.ID, WorkerID: "w1", Score: 2}, &ack); err != nil {
		t.Fatal(err)
	}
	won := rec.await(t, "speculation_won", func(ev nas.FaultEvent) bool { return ev.Kind == nas.FaultSpeculationWon })
	if won.CandidateID != backup.ID || won.Worker != "w1" {
		t.Fatalf("speculation_won event = %+v", won)
	}

	// The straggler finally finishes; its result must be scrubbed.
	if err := svc.Submit(RPCResult{ID: straggler.ID, WorkerID: "w0", Score: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	<-collected
	if len(results) != tasks {
		t.Fatalf("got %d distinct results, want %d: %v", len(results), tasks, results)
	}
	for id, n := range results {
		if n != 1 {
			t.Fatalf("task %d resolved %d times", id, n)
		}
	}
}

// TestSpeculationDisabledByDefault: with SpeculativeQuantile 0 (the zero
// FaultConfig), a straggler never triggers a backup.
func TestSpeculationDisabledByDefault(t *testing.T) {
	rec := &eventRecorder{}
	c := NewCoordinatorWith(FaultConfig{
		MonitorInterval: 2 * time.Millisecond,
		OnEvent:         rec.record,
	})
	defer c.Shutdown()
	svc := &Service{c: c}
	for i := 0; i < 5; i++ {
		c.Enqueue(RPCTask{ID: i})
	}
	go func() {
		for i := 0; i < 5; i++ {
			<-c.Results()
		}
	}()
	warmLatencyWindow(t, svc, "w0", 4, 2*time.Millisecond)
	var straggler RPCTask
	if err := svc.NextTask("w0", &straggler); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // far past any would-be threshold
	for _, ev := range rec.snapshot() {
		if ev.Kind == nas.FaultSpeculate || ev.Kind == nas.FaultSpeculationWon {
			t.Fatalf("speculation event with quantile 0: %+v", ev)
		}
	}
	var ack bool
	if err := svc.Submit(RPCResult{ID: straggler.ID, WorkerID: "w0", Score: 1}, &ack); err != nil {
		t.Fatal(err)
	}
}

// TestSpeculationFailedBackupIsDropped: a backup that errors is discarded
// without consuming the original's retry budget, and the original's
// eventual success still resolves the task.
func TestSpeculationFailedBackupIsDropped(t *testing.T) {
	rec := &eventRecorder{}
	c := specCoordinator(rec, 0.5)
	defer c.Shutdown()
	svc := &Service{c: c}
	const tasks = 5
	for i := 0; i < tasks; i++ {
		c.Enqueue(RPCTask{ID: i})
	}
	results := make(map[int]*RPCResult)
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for i := 0; i < tasks; i++ {
			res := <-c.Results()
			results[res.ID] = &res
		}
	}()
	warmLatencyWindow(t, svc, "w0", 4, 15*time.Millisecond)
	var straggler RPCTask
	if err := svc.NextTask("w0", &straggler); err != nil {
		t.Fatal(err)
	}
	rec.await(t, "speculated", func(ev nas.FaultEvent) bool { return ev.Kind == nas.FaultSpeculate })
	var backup RPCTask
	if err := svc.NextTask("w1", &backup); err != nil {
		t.Fatal(err)
	}
	var ack bool
	if err := svc.Submit(RPCResult{ID: backup.ID, WorkerID: "w1", Err: "injected backup failure"}, &ack); err != nil {
		t.Fatal(err)
	}
	// No requeue may result from the backup's failure.
	time.Sleep(20 * time.Millisecond)
	for _, ev := range rec.snapshot() {
		if ev.Kind == nas.FaultRequeue {
			t.Fatalf("backup failure consumed the retry budget: %+v", ev)
		}
	}
	if err := svc.Submit(RPCResult{ID: straggler.ID, WorkerID: "w0", Score: 3}, &ack); err != nil {
		t.Fatal(err)
	}
	<-collected
	res := results[straggler.ID]
	if res == nil || res.Failed || res.Score != 3 {
		t.Fatalf("straggler result = %+v, want original success", res)
	}
}

// runStragglerWorkload runs `tasks` tasks over `workers` svc-driven worker
// goroutines where task 3's first attempt stalls for stallDur; every other
// execution takes baseDur. It returns the wall-clock makespan and the
// per-ID terminal result counts.
func runStragglerWorkload(t *testing.T, c *Coordinator, workers, tasks int, baseDur, stallDur time.Duration) (time.Duration, map[int]int) {
	t.Helper()
	svc := &Service{c: c}
	for i := 0; i < tasks; i++ {
		c.Enqueue(RPCTask{ID: i})
	}
	start := time.Now()
	var makespan time.Duration
	results := make(map[int]int)
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for i := 0; i < tasks; i++ {
			res := <-c.Results()
			results[res.ID]++
			if res.Failed {
				t.Errorf("task %d failed: %s", res.ID, res.Err)
			}
		}
		makespan = time.Since(start)
	}()
	var stalled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for {
				var task RPCTask
				if err := svc.NextTask(id, &task); err != nil {
					t.Error(err)
					return
				}
				if task.Shutdown {
					return
				}
				dur := baseDur
				if task.ID == 3 && stalled.CompareAndSwap(false, true) {
					dur = stallDur // first attempt of task 3 stalls
				}
				time.Sleep(dur)
				var ack bool
				if err := svc.Submit(RPCResult{ID: task.ID, WorkerID: id, Score: 1}, &ack); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	<-collected
	c.Shutdown()
	wg.Wait()
	return makespan, results
}

// TestSpeculationBeatsDeadlineFailoverOnStragglers compares the two
// straggler defenses end to end: deadline-only failover waits out the full
// TaskDeadline before retrying, while speculation launches a backup as soon
// as the latency window flags the task — so its makespan must be shorter,
// with zero duplicate results either way.
func TestSpeculationBeatsDeadlineFailoverOnStragglers(t *testing.T) {
	const (
		workers  = 3
		tasks    = 16
		baseDur  = 10 * time.Millisecond
		stallDur = 1200 * time.Millisecond
		deadline = 800 * time.Millisecond
	)
	deadlineOnly := NewCoordinatorWith(FaultConfig{
		TaskDeadline:    deadline,
		MonitorInterval: 2 * time.Millisecond,
		RetryBackoff:    time.Millisecond,
	})
	deadlineMakespan, deadlineResults := runStragglerWorkload(t, deadlineOnly, workers, tasks, baseDur, stallDur)

	rec := &eventRecorder{}
	speculative := specCoordinator(rec, 0.5)
	specMakespan, specResults := runStragglerWorkload(t, speculative, workers, tasks, baseDur, stallDur)

	for name, results := range map[string]map[int]int{"deadline": deadlineResults, "speculation": specResults} {
		if len(results) != tasks {
			t.Fatalf("%s: %d distinct results, want %d", name, len(results), tasks)
		}
		for id, n := range results {
			if n != 1 {
				t.Fatalf("%s: task %d resolved %d times", name, id, n)
			}
		}
	}
	rec.await(t, "speculated", func(ev nas.FaultEvent) bool { return ev.Kind == nas.FaultSpeculate })
	if specMakespan >= deadlineMakespan {
		t.Fatalf("speculation (%v) did not beat deadline failover (%v)", specMakespan, deadlineMakespan)
	}
}

func TestKernelWorkersResolution(t *testing.T) {
	w := &Worker{}
	if got := w.kernelWorkersFor(RPCTask{}); got != 0 {
		t.Fatalf("no pins must leave the pool untouched, got %d", got)
	}
	if got := w.kernelWorkersFor(RPCTask{KernelWorkers: 3}); got != 3 {
		t.Fatalf("task share = %d, want 3", got)
	}
	w.KernelWorkers = 2
	if got := w.kernelWorkersFor(RPCTask{KernelWorkers: 3}); got != 2 {
		t.Fatalf("worker pin must win, got %d", got)
	}
}

// TestExecuteRestoresKernelPool: the per-task kernel width is scoped to the
// evaluation — even on the early-error path — so an operator's process-wide
// setting survives.
func TestExecuteRestoresKernelPool(t *testing.T) {
	prev := parallel.SetWorkers(3)
	defer parallel.SetWorkers(prev)
	w := &Worker{ID: "w0", KernelWorkers: 2}
	res := w.Execute(RPCTask{ID: 1, App: "no-such-app"})
	if res.Err == "" {
		t.Fatal("bogus app must error")
	}
	if got := parallel.Workers(); got != 3 {
		t.Fatalf("kernel pool leaked: %d workers, want 3 restored", got)
	}
}
