package cluster

import (
	"bytes"
	"testing"

	"swtnas/internal/checkpoint"
)

func TestWorkerHonorsPartialEpochsOverride(t *testing.T) {
	w := &Worker{ID: "w"}
	base := RPCTask{
		ID: 1, App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Arch: []int{0, 0, 0, 0, 0, 0, 0, 0}, Seed: 5,
	}
	one := base
	one.PartialEpochs = 1
	three := base
	three.PartialEpochs = 3
	r1 := w.Execute(one)
	r3 := w.Execute(three)
	if r1.Err != "" || r3.Err != "" {
		t.Fatalf("errs: %q %q", r1.Err, r3.Err)
	}
	if r3.TrainMillis <= r1.TrainMillis {
		t.Fatalf("3 epochs (%.1fms) not slower than 1 (%.1fms)", r3.TrainMillis, r1.TrainMillis)
	}
}

func TestWorkerBatchSizeHint(t *testing.T) {
	w := &Worker{ID: "w"}
	task := RPCTask{
		ID: 1, App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Arch: []int{0, 0, 0, 0, 0, 0, 0, 0}, Seed: 5,
		BatchSizeHint: 8, PartialEpochs: 1,
	}
	if res := w.Execute(task); res.Err != "" {
		t.Fatal(res.Err)
	}
}

func TestWorkerTransfersFromInlineParent(t *testing.T) {
	w := &Worker{ID: "w"}
	arch := []int{0, 0, 0, 0, 0, 0, 0, 0}
	parentRes := w.Execute(RPCTask{
		ID: 1, App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Arch: arch, Seed: 5, PartialEpochs: 1,
	})
	if parentRes.Err != "" {
		t.Fatal(parentRes.Err)
	}
	child := w.Execute(RPCTask{
		ID: 2, App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Arch: arch, Seed: 6, Matcher: "LCS", Parent: parentRes.Checkpoint,
		PartialEpochs: 1,
	})
	if child.Err != "" {
		t.Fatal(child.Err)
	}
	// Same architecture: every layer group must be warm-started.
	m, err := checkpoint.Decode(bytes.NewReader(parentRes.Checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	if child.Copied != len(m.Groups) {
		t.Fatalf("copied %d of %d groups", child.Copied, len(m.Groups))
	}
}
