package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"swtnas/internal/trace"
)

// startCluster spins up a coordinator on a loopback port plus n in-process
// workers, returning the coordinator and a stop function.
func startCluster(t *testing.T, n int) (*Coordinator, func()) {
	t.Helper()
	c := NewCoordinator()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(l) //nolint:errcheck // returns when the listener closes
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		w := &Worker{ID: fmt.Sprintf("worker-%d", i)}
		go func() { done <- w.Run(l.Addr().String()) }()
	}
	stop := func() {
		c.Shutdown()
		for i := 0; i < n; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("worker exit: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("worker did not shut down")
			}
		}
		l.Close()
	}
	return c, stop
}

func TestWorkerExecutesTask(t *testing.T) {
	w := &Worker{ID: "w0"}
	task := RPCTask{
		ID: 1, App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Arch: []int{0, 0, 0, 0, 0, 0, 0, 0}, Seed: 5,
	}
	res := w.Execute(task)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.ID != 1 || res.WorkerID != "w0" {
		t.Fatalf("result header = %+v", res)
	}
	if len(res.Checkpoint) == 0 || res.Params <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The app cache must serve a second task without rebuilding.
	res2 := w.Execute(task)
	if res2.Err != "" {
		t.Fatal(res2.Err)
	}
}

func TestWorkerRejectsBadTask(t *testing.T) {
	w := &Worker{ID: "w0"}
	if res := w.Execute(RPCTask{App: "bogus"}); res.Err == "" {
		t.Fatal("unknown app must fail")
	}
	bad := RPCTask{ID: 1, App: "nt3", DataSeed: 1, TrainN: 16, ValN: 8, Arch: []int{1}}
	if res := w.Execute(bad); res.Err == "" {
		t.Fatal("invalid arch must fail")
	}
	withParent := RPCTask{
		ID: 1, App: "nt3", DataSeed: 1, TrainN: 16, ValN: 8,
		Arch: []int{0, 0, 0, 0, 0, 0, 0, 0}, Matcher: "LCS", Parent: []byte("garbage"),
	}
	if res := w.Execute(withParent); res.Err == "" {
		t.Fatal("corrupt parent checkpoint must fail")
	}
	withParent.Matcher = "nope"
	if res := w.Execute(withParent); res.Err == "" {
		t.Fatal("unknown matcher must fail")
	}
}

func TestDistributedSearchOverTCP(t *testing.T) {
	c, stop := startCluster(t, 2)
	defer stop()
	var mu sync.Mutex
	var streamed []trace.Record
	tr, err := RunDistributed(c, DistConfig{
		App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Matcher: "LCS", Budget: 8, Outstanding: 2, Seed: 3, N: 3, S: 2,
		Progress: func(r trace.Record) {
			mu.Lock()
			streamed = append(streamed, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 8 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	// Progress streamed the same records the trace recorded, in order.
	mu.Lock()
	if len(streamed) != len(tr.Records) {
		t.Fatalf("streamed %d records, trace has %d", len(streamed), len(tr.Records))
	}
	for i := range streamed {
		if streamed[i].ID != tr.Records[i].ID || streamed[i].Score != tr.Records[i].Score {
			t.Fatalf("streamed record %d = %+v, trace has %+v", i, streamed[i], tr.Records[i])
		}
	}
	mu.Unlock()
	if tr.Scheme != "LCS" {
		t.Fatalf("scheme = %q", tr.Scheme)
	}
	transferred := 0
	for _, r := range tr.Records {
		if r.CheckpointBytes == 0 {
			t.Fatal("missing checkpoint bytes")
		}
		if r.TransferCopied > 0 {
			transferred++
		}
	}
	if transferred == 0 {
		t.Fatal("distributed LCS search never transferred weights")
	}
}

func TestDistributedBaselineOverTCP(t *testing.T) {
	c, stop := startCluster(t, 1)
	defer stop()
	tr, err := RunDistributed(c, DistConfig{
		App: "nt3", DataSeed: 1, TrainN: 32, ValN: 16,
		Budget: 4, Outstanding: 1, Seed: 4, N: 2, S: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scheme != "baseline" {
		t.Fatalf("scheme = %q", tr.Scheme)
	}
	for _, r := range tr.Records {
		if r.TransferCopied != 0 {
			t.Fatal("baseline must not transfer")
		}
	}
}

func TestRunDistributedValidatesBudget(t *testing.T) {
	c := NewCoordinator()
	if _, err := RunDistributed(c, DistConfig{App: "nt3", Budget: 0}); err == nil {
		t.Fatal("zero budget must error")
	}
	if _, err := RunDistributed(c, DistConfig{App: "bogus", Budget: 1}); err == nil {
		t.Fatal("unknown app must error")
	}
}
