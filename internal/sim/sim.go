// Package sim is the discrete-event cluster simulator: it replays a
// candidate-estimation phase on a configurable number of virtual GPUs with a
// shared-file-system cost model, so scheduler and storage changes can be
// tested at fleet scale before they are built (the paper's Fig 10 study,
// since this host has no GPUs).
//
// The package has three layers:
//
//   - Simulate (this file): the base engine — FCFS dispatch to free GPUs,
//     serialized scheduler latency, a shared-FS model for checkpoint I/O.
//     internal/cluster re-exports it unchanged for the Table II presets.
//   - SimulateFleet (fleet.go): the base engine plus an intra-node core
//     model (SWTNAS_WORKERS-aware kernel-parallel speedup), an analytic
//     heartbeat-monitor load on the coordinator, straggler injection, and
//     speculative re-execution — first-result-wins backups for tasks that
//     overrun a quantile of the workload's latency distribution.
//   - CostModel (cost.go) and Replay (replay.go): empirical cost samplers
//     calibrated from real obs snapshots, and trace replay that validates
//     predicted against measured makespan.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// FSModel is the shared-file-system cost model. An operation costs
// PerOpLatency plus bytes/bandwidth. With Serialized set, all checkpoint
// I/O queues on a single FCFS resource (a saturated parallel FS); otherwise
// each operation only occupies its own GPU's timeline (a parallel FS with
// headroom, where slow effective bandwidth — e.g. the paper's ~4 s Ray
// object-store reads for NT3's 40 MB checkpoints — shows up as per-task
// overhead rather than contention).
type FSModel struct {
	// WriteBandwidth and ReadBandwidth are in bytes/second.
	WriteBandwidth, ReadBandwidth float64
	// PerOpLatency is the fixed cost of each open/transfer round trip.
	PerOpLatency time.Duration
	// Serialized queues all operations on one FCFS resource.
	Serialized bool
}

// DefaultFS is a modest parallel-FS configuration.
func DefaultFS() FSModel {
	return FSModel{
		WriteBandwidth: 4e9,
		ReadBandwidth:  4e9,
		PerOpLatency:   2 * time.Millisecond,
		Serialized:     true,
	}
}

func (f FSModel) opTime(bytes int64, bandwidth float64) time.Duration {
	if bandwidth <= 0 {
		return f.PerOpLatency
	}
	return f.PerOpLatency + time.Duration(float64(bytes)/bandwidth*float64(time.Second))
}

// Task is one candidate evaluation replayed by the simulator.
type Task struct {
	// TrainTime is the candidate's modeled training duration. In fleet
	// simulations it is the serial (one kernel worker) duration; the kernel
	// model scales it down.
	TrainTime time.Duration
	// CheckpointBytes is the encoded checkpoint size.
	CheckpointBytes int64
	// LoadParent marks tasks that read a provider checkpoint before
	// training (weight-transfer schemes after the population fills).
	LoadParent bool
	// ParentBytes is the provider checkpoint size (0 -> CheckpointBytes).
	ParentBytes int64
	// SlowFactor injects a straggler: the task's training duration is
	// multiplied by it on the evaluator it first lands on (0 or 1 -> no
	// slowdown). Speculative backups re-run at the nominal duration — the
	// backup lands on a healthy evaluator.
	SlowFactor float64
}

// Config configures one simulated candidate-estimation phase.
type Config struct {
	// GPUs is the virtual accelerator count (paper: 8, 16, 32).
	GPUs int
	// Tasks is the replayed workload, dispatched FCFS to free GPUs.
	Tasks []Task
	// WriteCheckpoints enables the per-candidate checkpoint write the
	// weight-transfer schemes add over the baseline.
	WriteCheckpoints bool
	// MatchOverhead is the LP/LCS compute cost added per transferring
	// task (paper Section VIII-E: at most 150 ms).
	MatchOverhead time.Duration
	// SchedulerLatency is the serialized per-task dispatch cost at the
	// scheduler (Ray head node). It bounds throughput for very short
	// tasks — the paper's NT3 non-linearity from 16 to 32 GPUs, which
	// appears in the baseline too.
	SchedulerLatency time.Duration
	// FS is the shared file-system model; zero value -> DefaultFS.
	FS FSModel
}

// Result summarizes a simulated run.
type Result struct {
	// Makespan is the end-to-end candidate-estimation time (Fig 10's y).
	Makespan time.Duration
	// TrainBusy is the summed pure-training time across GPUs.
	TrainBusy time.Duration
	// IOBusy is the summed time tasks spent waiting for or performing
	// checkpoint I/O.
	IOBusy time.Duration
	// GPUBusy is the per-GPU total busy time.
	GPUBusy []time.Duration
}

// OverheadFraction is the share of GPU time not spent training.
func (r Result) OverheadFraction() float64 {
	total := r.TrainBusy + r.IOBusy
	if total == 0 {
		return 0
	}
	return float64(r.IOBusy) / float64(total)
}

// event phases of a candidate evaluation on a virtual GPU.
const (
	evGPUFree   = iota // the GPU finished its previous task
	evTrainDone        // training finished; a checkpoint write may follow
)

type simEvent struct {
	t     time.Duration
	phase int
	gpu   int
	seq   int // FIFO tie-break for simultaneous events
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate replays the workload on the virtual cluster and returns its
// timing. It is an event-driven simulation: tasks dispatch FCFS to GPUs as
// they free up, and checkpoint reads/writes are serviced by the shared file
// system in the order they are issued in simulated time.
func Simulate(cfg Config) (Result, error) {
	if cfg.GPUs <= 0 {
		return Result{}, fmt.Errorf("sim: GPU count %d must be positive", cfg.GPUs)
	}
	if len(cfg.Tasks) == 0 {
		return Result{}, fmt.Errorf("sim: no tasks to simulate")
	}
	fs := cfg.FS
	if fs == (FSModel{}) {
		fs = DefaultFS()
	}
	res := Result{GPUBusy: make([]time.Duration, cfg.GPUs)}

	var (
		fsFree    time.Duration // serialized-FS availability
		schedFree time.Duration // serialized scheduler availability
		next      int           // next task to dispatch
		current   = make([]int, cfg.GPUs)
		began     = make([]time.Duration, cfg.GPUs)
		events    = &eventHeap{}
		seq       int
	)
	fsOp := func(t time.Duration, bytes int64, bandwidth float64) (end time.Duration) {
		cost := fs.opTime(bytes, bandwidth)
		if !fs.Serialized {
			return t + cost
		}
		start := maxDur(t, fsFree)
		fsFree = start + cost
		return fsFree
	}
	push := func(t time.Duration, phase, gpu int) {
		heap.Push(events, simEvent{t: t, phase: phase, gpu: gpu, seq: seq})
		seq++
	}
	for g := 0; g < cfg.GPUs; g++ {
		current[g] = -1
		push(0, evGPUFree, g)
	}

	for events.Len() > 0 {
		ev := heap.Pop(events).(simEvent)
		g := ev.gpu
		switch ev.phase {
		case evGPUFree:
			if current[g] >= 0 {
				res.GPUBusy[g] += ev.t - began[g]
				if ev.t > res.Makespan {
					res.Makespan = ev.t
				}
				current[g] = -1
			}
			if next >= len(cfg.Tasks) {
				continue
			}
			task := cfg.Tasks[next]
			current[g] = next
			began[g] = ev.t
			next++
			t := ev.t
			if cfg.SchedulerLatency > 0 {
				// Task dispatch serializes at the scheduler.
				start := maxDur(t, schedFree)
				schedFree = start + cfg.SchedulerLatency
				res.IOBusy += schedFree - t
				t = schedFree
			}
			if task.LoadParent {
				// The provider-checkpoint read is issued now; a
				// serialized FS services requests in issue order.
				bytes := task.ParentBytes
				if bytes == 0 {
					bytes = task.CheckpointBytes
				}
				ioEnd := fsOp(t, bytes, fs.ReadBandwidth)
				res.IOBusy += (ioEnd - t) + cfg.MatchOverhead
				t = ioEnd + cfg.MatchOverhead
			}
			res.TrainBusy += task.TrainTime
			push(t+task.TrainTime, evTrainDone, g)
		case evTrainDone:
			task := cfg.Tasks[current[g]]
			t := ev.t
			if cfg.WriteCheckpoints {
				ioEnd := fsOp(t, task.CheckpointBytes, fs.WriteBandwidth)
				res.IOBusy += ioEnd - t
				t = ioEnd
			}
			push(t, evGPUFree, g)
		}
	}
	return res, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
