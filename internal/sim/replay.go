package sim

import (
	"fmt"
	"time"

	"swtnas/internal/trace"
)

// ReplayReport is the outcome of feeding a recorded search trace back
// through the simulator: the predicted makespan next to the measured one,
// and the relative error between them — the calibration-quality check the
// sim-smoke CI job pins at 25%.
type ReplayReport struct {
	// Workers is the evaluator count used (inferred from the trace's
	// concurrency when not given).
	Workers int
	// WorkersInferred says Workers came from the trace, not the caller.
	WorkersInferred bool
	// Tasks is the number of replayed records; SkippedFailed counts
	// records dropped because they failed (no valid timing), and
	// SkippedFiltered counts proxy-rejected proposals (never evaluated, so
	// never replayed).
	Tasks           int
	SkippedFailed   int
	SkippedFiltered int
	// Measured is the recorded makespan (latest completion offset);
	// Predicted is the simulated one; Error is |Predicted-Measured| /
	// Measured.
	Measured  time.Duration
	Predicted time.Duration
	Error     float64
	// Fleet is the full simulation result behind Predicted.
	Fleet FleetResult
	// Calibrated and Defaulted echo the cost model's provenance.
	Calibrated []string
	Defaulted  []string
}

// TasksFromTrace converts a recorded trace into simulator tasks, in
// completion order. Each record's end-to-end evaluation latency (EvalTime,
// falling back to TrainTime for traces from before it was recorded) becomes
// the task duration; Failed records are skipped — they carry no valid
// timing — and returned as the skipped count. When EvalTime is used it
// already contains the record's transfer and checkpoint time, so the tasks
// carry no extra I/O for the engine to re-add.
func TasksFromTrace(tr *trace.Trace) (tasks []Task, skippedFailed int) {
	for _, r := range tr.Records {
		if r.Failed {
			skippedFailed++
			continue
		}
		d := r.EvalTime
		if d <= 0 {
			d = r.TrainTime
		}
		tasks = append(tasks, Task{
			TrainTime:       d,
			CheckpointBytes: r.CheckpointBytes,
		})
	}
	return tasks, skippedFailed
}

// Replay simulates the trace's workload on workers evaluators using the
// cost model's dispatch latency, and compares the predicted makespan with
// the measured one. workers <= 0 infers the evaluator count from the
// trace's own concurrency: total evaluation time over measured makespan,
// rounded, clamped to [1, tasks].
func Replay(tr *trace.Trace, workers int, cm CostModel) (*ReplayReport, error) {
	tasks, skippedFailed := TasksFromTrace(tr)
	if len(tasks) == 0 {
		return nil, fmt.Errorf("sim: trace has no completed records to replay")
	}
	var measured, total time.Duration
	for _, r := range tr.Records {
		if !r.Failed && r.CompletedAt > measured {
			measured = r.CompletedAt
		}
	}
	for _, t := range tasks {
		total += t.TrainTime
	}
	if measured <= 0 {
		return nil, fmt.Errorf("sim: trace records have no completion offsets")
	}
	rep := &ReplayReport{
		Workers:         workers,
		Tasks:           len(tasks),
		SkippedFailed:   skippedFailed,
		SkippedFiltered: len(tr.Filtered),
		Measured:        measured,
		Calibrated:      cm.Calibrated,
		Defaulted:       cm.Defaulted,
	}
	if workers <= 0 {
		w := int(float64(total)/float64(measured) + 0.5)
		if w < 1 {
			w = 1
		}
		if w > len(tasks) {
			w = len(tasks)
		}
		rep.Workers = w
		rep.WorkersInferred = true
	}
	res, err := SimulateFleet(FleetConfig{
		Evaluators:       rep.Workers,
		Tasks:            tasks,
		SchedulerLatency: cm.Dispatch,
		FS:               cm.FS,
	})
	if err != nil {
		return nil, err
	}
	rep.Fleet = res
	rep.Predicted = res.Makespan
	rep.Error = relErr(rep.Predicted, rep.Measured)
	return rep, nil
}

func relErr(predicted, measured time.Duration) float64 {
	if measured == 0 {
		return 0
	}
	d := float64(predicted - measured)
	if d < 0 {
		d = -d
	}
	return d / float64(measured)
}
