package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// SpeculationConfig models speculative re-execution: when a running task's
// elapsed time exceeds Multiplier times the Quantile of the workload's
// nominal duration distribution, a backup attempt is launched on a free
// evaluator and the first result wins (the loser runs to completion and its
// result is scrubbed, matching the real coordinator's duplicate handling).
type SpeculationConfig struct {
	// Enabled turns speculation on.
	Enabled bool
	// Quantile of the nominal task-duration distribution used as the
	// straggler threshold base (0 -> 0.9).
	Quantile float64
	// Multiplier scales the quantile into the trigger threshold (0 -> 1.5).
	Multiplier float64
}

func (s SpeculationConfig) quantile() float64 {
	if s.Quantile <= 0 || s.Quantile >= 1 {
		return 0.9
	}
	return s.Quantile
}

func (s SpeculationConfig) multiplier() float64 {
	if s.Multiplier <= 0 {
		return 1.5
	}
	return s.Multiplier
}

// FleetConfig configures a fleet-scale simulation: the base engine's
// workload and FS model plus the intra-node core model, the coordinator's
// heartbeat-monitor load, and speculative re-execution.
type FleetConfig struct {
	// Evaluators is the simulated evaluator (GPU) count.
	Evaluators int
	// Tasks is the workload; Task.TrainTime is the serial duration, scaled
	// by the kernel model below.
	Tasks []Task
	// KernelWorkers is the kernel-pool width per evaluator (SWTNAS_WORKERS
	// on a real worker). 0 derives it from the node core budget the way
	// the real split does: max(1, CoresPerNode/EvaluatorsPerNode), or 1
	// when no budget is given.
	KernelWorkers     int
	CoresPerNode      int
	EvaluatorsPerNode int
	// ParallelFraction p gives Amdahl scaling: effective duration =
	// TrainTime * ((1-p) + p/k) for k kernel workers. 0 -> durations used
	// as-is.
	ParallelFraction float64
	// SchedulerLatency is the serialized per-task dispatch cost at the
	// coordinator. The heartbeat-monitor load inflates it: with load l in
	// [0,1), effective latency is SchedulerLatency/(1-l).
	SchedulerLatency time.Duration
	// HeartbeatEvery and HeartbeatCost model the coordinator's monitor
	// loop: Evaluators/HeartbeatEvery heartbeats per second, each costing
	// HeartbeatCost of coordinator time. Their product is the monitor
	// load; at load -> 1 the coordinator saturates and dispatch stalls —
	// the breaking point the scale study locates.
	HeartbeatEvery time.Duration
	HeartbeatCost  time.Duration
	// WriteCheckpoints and MatchOverhead mirror Config.
	WriteCheckpoints bool
	MatchOverhead    time.Duration
	// FS is the shared-FS model; zero value -> DefaultFS.
	FS FSModel
	// Speculation configures speculative re-execution.
	Speculation SpeculationConfig
}

func (cfg FleetConfig) kernelWorkers() int {
	if cfg.KernelWorkers > 0 {
		return cfg.KernelWorkers
	}
	if cfg.CoresPerNode > 0 && cfg.EvaluatorsPerNode > 0 {
		if k := cfg.CoresPerNode / cfg.EvaluatorsPerNode; k > 1 {
			return k
		}
	}
	return 1
}

// coordinatorLoad is the fraction of coordinator time the heartbeat monitor
// consumes (unclamped; >= 1 means saturation).
func (cfg FleetConfig) coordinatorLoad() float64 {
	if cfg.HeartbeatEvery <= 0 || cfg.HeartbeatCost <= 0 {
		return 0
	}
	return float64(cfg.Evaluators) * float64(cfg.HeartbeatCost) / float64(cfg.HeartbeatEvery)
}

// FleetResult extends Result with the fleet-model outputs.
type FleetResult struct {
	Result
	// KernelWorkers and Speedup report the applied intra-node core model
	// (Speedup = serial/effective duration ratio).
	KernelWorkers int
	Speedup       float64
	// CoordinatorLoad is the heartbeat-monitor load (>= 1: saturated);
	// DispatchLatency is the load-inflated effective scheduler latency.
	CoordinatorLoad float64
	DispatchLatency time.Duration
	// QueueWait* summarize the per-attempt dispatch delay — the time
	// between an evaluator freeing up and its next task starting. Its
	// blowup with fleet size is the coordinator-saturation signal.
	QueueWaitMean time.Duration
	QueueWaitP95  time.Duration
	QueueWaitMax  time.Duration
	// Speculated counts backup attempts launched; SpeculationWon counts
	// tasks whose backup finished first. Attempts is total dispatches
	// (tasks + backups).
	Speculated     int
	SpeculationWon int
	Attempts       int
}

// fleet event phases (the base engine's evGPUFree/evTrainDone plus the
// speculation trigger).
const (
	fevFree = iota // evaluator finished (or is checking the queue)
	fevDone        // an attempt's training finished
	fevSpec        // straggler check for a running attempt
)

type attempt struct {
	task    int
	backup  bool
	dur     time.Duration // effective training duration of this attempt
	enqueue time.Duration // when the attempt became dispatchable
}

// SimulateFleet runs the fleet-scale simulation. Dispatch is FCFS with
// backups queued at the front (the real coordinator requeues urgent work the
// same way); a speculation trigger fires only while its task is still
// running, and the loser of a race runs to completion on its evaluator —
// there is no cancellation RPC, matching the real system.
func SimulateFleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Evaluators <= 0 {
		return FleetResult{}, fmt.Errorf("sim: evaluator count %d must be positive", cfg.Evaluators)
	}
	if len(cfg.Tasks) == 0 {
		return FleetResult{}, fmt.Errorf("sim: no tasks to simulate")
	}
	fs := cfg.FS
	if fs == (FSModel{}) {
		fs = DefaultFS()
	}
	k := cfg.kernelWorkers()
	p := cfg.ParallelFraction
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	scale := (1 - p) + p/float64(k)
	load := cfg.coordinatorLoad()
	dispatch := cfg.SchedulerLatency
	if load > 0 && dispatch > 0 {
		l := load
		if l > 0.99 {
			l = 0.99
		}
		dispatch = time.Duration(float64(dispatch) / (1 - l))
	}

	res := FleetResult{
		Result:          Result{GPUBusy: make([]time.Duration, cfg.Evaluators)},
		KernelWorkers:   k,
		CoordinatorLoad: load,
		DispatchLatency: dispatch,
	}
	if scale > 0 {
		res.Speedup = 1 / scale
	}

	// Nominal (healthy-evaluator) durations; SlowFactor applies only to a
	// task's first attempt. The speculation threshold comes from this
	// distribution, like the real coordinator's completed-latency window.
	nominal := make([]time.Duration, len(cfg.Tasks))
	for i, t := range cfg.Tasks {
		nominal[i] = time.Duration(float64(t.TrainTime) * scale)
	}
	var threshold time.Duration
	if cfg.Speculation.Enabled {
		q := DurationQuantile(nominal, cfg.Speculation.quantile())
		threshold = time.Duration(float64(q) * cfg.Speculation.multiplier())
	}

	var (
		fsFree    time.Duration
		schedFree time.Duration
		events    = &eventHeap{}
		seq       int
		queue     []*attempt // pending attempts; backups join at the front
		idle      []int      // evaluators with nothing to run
		running   = make([]*attempt, cfg.Evaluators)
		began     = make([]time.Duration, cfg.Evaluators)
		doneAt    = make([]time.Duration, len(cfg.Tasks))
		done      = make([]bool, len(cfg.Tasks))
		spec      = make([]bool, len(cfg.Tasks)) // backup already launched
		waits     []time.Duration
	)
	push := func(t time.Duration, phase, gpu int) {
		heap.Push(events, simEvent{t: t, phase: phase, gpu: gpu, seq: seq})
		seq++
	}
	fsOp := func(t time.Duration, bytes int64, bandwidth float64) time.Duration {
		cost := fs.opTime(bytes, bandwidth)
		if !fs.Serialized {
			return t + cost
		}
		start := maxDur(t, fsFree)
		fsFree = start + cost
		return fsFree
	}

	for i := range cfg.Tasks {
		slow := cfg.Tasks[i].SlowFactor
		if slow <= 0 {
			slow = 1
		}
		queue = append(queue, &attempt{task: i, dur: time.Duration(float64(nominal[i]) * slow)})
	}
	for g := 0; g < cfg.Evaluators; g++ {
		push(0, fevFree, g)
	}

	for events.Len() > 0 {
		ev := heap.Pop(events).(simEvent)
		g := ev.gpu
		switch ev.phase {
		case fevFree:
			if a := running[g]; a != nil {
				res.GPUBusy[g] += ev.t - began[g]
				running[g] = nil
			}
			if len(queue) == 0 {
				idle = append(idle, g)
				continue
			}
			a := queue[0]
			queue = queue[1:]
			running[g] = a
			began[g] = ev.t
			res.Attempts++
			t := ev.t
			if dispatch > 0 {
				start := maxDur(t, schedFree)
				schedFree = start + dispatch
				res.IOBusy += schedFree - t
				t = schedFree
			}
			waits = append(waits, t-maxDur(ev.t, a.enqueue))
			task := cfg.Tasks[a.task]
			if task.LoadParent {
				bytes := task.ParentBytes
				if bytes == 0 {
					bytes = task.CheckpointBytes
				}
				ioEnd := fsOp(t, bytes, fs.ReadBandwidth)
				res.IOBusy += (ioEnd - t) + cfg.MatchOverhead
				t = ioEnd + cfg.MatchOverhead
			}
			res.TrainBusy += a.dur
			if threshold > 0 && !a.backup && a.dur > threshold {
				push(t+threshold, fevSpec, g)
			}
			push(t+a.dur, fevDone, g)
		case fevSpec:
			// Straggler check: the attempt this event was scheduled for is
			// still on g iff the task is not done and g still runs it.
			a := running[g]
			if a == nil || a.backup || done[a.task] || spec[a.task] {
				continue
			}
			spec[a.task] = true
			res.Speculated++
			b := &attempt{task: a.task, backup: true, dur: nominal[a.task], enqueue: ev.t}
			queue = append([]*attempt{b}, queue...)
			if len(idle) > 0 {
				w := idle[0]
				idle = idle[1:]
				push(ev.t, fevFree, w)
			}
		case fevDone:
			a := running[g]
			t := ev.t
			if cfg.WriteCheckpoints {
				ioEnd := fsOp(t, cfg.Tasks[a.task].CheckpointBytes, fs.WriteBandwidth)
				res.IOBusy += ioEnd - t
				t = ioEnd
			}
			if !done[a.task] {
				done[a.task] = true
				doneAt[a.task] = t
				if a.backup {
					res.SpeculationWon++
				}
			}
			push(t, fevFree, g)
		}
	}

	for _, t := range doneAt {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		var sum time.Duration
		for _, w := range waits {
			sum += w
		}
		res.QueueWaitMean = sum / time.Duration(len(waits))
		res.QueueWaitP95 = waits[int(0.95*float64(len(waits)-1)+0.5)]
		res.QueueWaitMax = waits[len(waits)-1]
	}
	return res, nil
}
