package sim

import (
	"testing"
	"time"
)

func uniformTasks(n int, train time.Duration) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{TrainTime: train}
	}
	return tasks
}

func TestFSOpTime(t *testing.T) {
	fs := FSModel{WriteBandwidth: 1e6, ReadBandwidth: 1e6, PerOpLatency: 10 * time.Millisecond}
	got := fs.opTime(1e6, fs.WriteBandwidth)
	if got != 10*time.Millisecond+time.Second {
		t.Fatalf("opTime = %v", got)
	}
	zero := FSModel{PerOpLatency: 5 * time.Millisecond}
	if zero.opTime(100, 0) != 5*time.Millisecond {
		t.Fatal("zero bandwidth must cost only latency")
	}
}

func TestSimulateZeroDurationTasks(t *testing.T) {
	// Tasks with zero training time must drain without hanging and with a
	// zero makespan when nothing else costs time.
	res, err := Simulate(Config{GPUs: 4, Tasks: uniformTasks(64, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.TrainBusy != 0 {
		t.Fatalf("zero-duration makespan = %v trainBusy = %v, want 0", res.Makespan, res.TrainBusy)
	}
	// With a scheduler latency they serialize: 64 dispatches floor the run.
	res, err = Simulate(Config{GPUs: 4, Tasks: uniformTasks(64, 0), SchedulerLatency: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if want := 640 * time.Millisecond; res.Makespan != want {
		t.Fatalf("zero-duration scheduler floor = %v, want %v", res.Makespan, want)
	}
}

func TestFleetMatchesBaseEngineWhenExtensionsOff(t *testing.T) {
	// With no kernel model, no heartbeat load, and no speculation, the
	// fleet engine must reproduce the base engine's makespan exactly.
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{
			TrainTime:       time.Duration(i%7+1) * 500 * time.Millisecond,
			CheckpointBytes: 20e6,
			LoadParent:      i >= 8,
		}
	}
	cfg := Config{
		GPUs:             8,
		Tasks:            tasks,
		WriteCheckpoints: true,
		MatchOverhead:    50 * time.Millisecond,
		SchedulerLatency: 100 * time.Millisecond,
	}
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := SimulateFleet(FleetConfig{
		Evaluators:       cfg.GPUs,
		Tasks:            cfg.Tasks,
		WriteCheckpoints: cfg.WriteCheckpoints,
		MatchOverhead:    cfg.MatchOverhead,
		SchedulerLatency: cfg.SchedulerLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Makespan != base.Makespan {
		t.Fatalf("fleet makespan %v != base %v", fleet.Makespan, base.Makespan)
	}
	if fleet.TrainBusy != base.TrainBusy {
		t.Fatalf("fleet trainBusy %v != base %v", fleet.TrainBusy, base.TrainBusy)
	}
	if fleet.KernelWorkers != 1 || fleet.Speculated != 0 {
		t.Fatalf("extensions leaked: %+v", fleet)
	}
}

func TestFleetSingleEvaluatorSequential(t *testing.T) {
	res, err := SimulateFleet(FleetConfig{Evaluators: 1, Tasks: uniformTasks(10, time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10*time.Second {
		t.Fatalf("single-evaluator makespan = %v, want 10s", res.Makespan)
	}
	if res.Attempts != 10 {
		t.Fatalf("attempts = %d, want 10", res.Attempts)
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := SimulateFleet(FleetConfig{Evaluators: 0, Tasks: uniformTasks(1, time.Second)}); err == nil {
		t.Fatal("zero evaluators must error")
	}
	if _, err := SimulateFleet(FleetConfig{Evaluators: 4}); err == nil {
		t.Fatal("no tasks must error")
	}
}

func TestFleetKernelSpeedup(t *testing.T) {
	tasks := uniformTasks(32, 8*time.Second)
	serial, err := SimulateFleet(FleetConfig{Evaluators: 4, Tasks: tasks, ParallelFraction: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	// 4 kernel workers at p=0.75: duration scales by 0.25 + 0.75/4 = 7/16.
	par, err := SimulateFleet(FleetConfig{Evaluators: 4, Tasks: tasks, KernelWorkers: 4, ParallelFraction: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if serial.KernelWorkers != 1 || par.KernelWorkers != 4 {
		t.Fatalf("kernel workers = %d, %d", serial.KernelWorkers, par.KernelWorkers)
	}
	if want := serial.Makespan * 7 / 16; par.Makespan != want {
		t.Fatalf("kernel-parallel makespan = %v, want %v (serial %v)", par.Makespan, want, serial.Makespan)
	}
	// Core-budget derivation: 32 cores / 8 evaluators per node -> 4 workers.
	derived, err := SimulateFleet(FleetConfig{
		Evaluators: 4, Tasks: tasks, ParallelFraction: 0.75,
		CoresPerNode: 32, EvaluatorsPerNode: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if derived.KernelWorkers != 4 || derived.Makespan != par.Makespan {
		t.Fatalf("derived kernel workers = %d makespan = %v, want 4 and %v", derived.KernelWorkers, derived.Makespan, par.Makespan)
	}
}

func TestFleetHeartbeatLoadInflatesDispatch(t *testing.T) {
	tasks := uniformTasks(256, 2*time.Second)
	mk := func(evaluators int) FleetResult {
		res, err := SimulateFleet(FleetConfig{
			Evaluators:       evaluators,
			Tasks:            tasks,
			SchedulerLatency: 10 * time.Millisecond,
			HeartbeatEvery:   time.Second,
			HeartbeatCost:    500 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small, big := mk(16), mk(1024)
	if small.CoordinatorLoad >= big.CoordinatorLoad {
		t.Fatalf("monitor load must grow with the fleet: %v vs %v", small.CoordinatorLoad, big.CoordinatorLoad)
	}
	if big.DispatchLatency <= small.DispatchLatency {
		t.Fatalf("dispatch latency must inflate under load: %v vs %v", small.DispatchLatency, big.DispatchLatency)
	}
	if big.QueueWaitP95 <= small.QueueWaitP95 {
		t.Fatalf("queue wait must blow up at scale: p95 %v vs %v", small.QueueWaitP95, big.QueueWaitP95)
	}
}

func TestFleetSpeculationBeatsStragglers(t *testing.T) {
	// Uniform 2 s tasks, two of them 20x stragglers. Without speculation
	// the stragglers gate the makespan; with it, backups on healthy
	// evaluators win.
	tasks := uniformTasks(64, 2*time.Second)
	tasks[5].SlowFactor = 20
	tasks[23].SlowFactor = 20
	cfg := FleetConfig{Evaluators: 8, Tasks: tasks}
	off, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Speculation = SpeculationConfig{Enabled: true}
	on, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Speculated != 0 || off.SpeculationWon != 0 {
		t.Fatalf("disabled run speculated: %+v", off)
	}
	if on.Speculated != 2 {
		t.Fatalf("speculated = %d, want 2", on.Speculated)
	}
	if on.SpeculationWon != 2 {
		t.Fatalf("speculation won = %d, want 2", on.SpeculationWon)
	}
	if on.Makespan >= off.Makespan {
		t.Fatalf("speculation did not help: on %v, off %v", on.Makespan, off.Makespan)
	}
	if on.Attempts != 66 {
		t.Fatalf("attempts = %d, want 64 tasks + 2 backups", on.Attempts)
	}
}

func TestFleetSpeculationNoopWithoutStragglers(t *testing.T) {
	// A uniform workload never crosses the 1.5x-of-p90 threshold, so
	// enabling speculation must not change the makespan.
	tasks := uniformTasks(64, 2*time.Second)
	off, err := SimulateFleet(FleetConfig{Evaluators: 8, Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	on, err := SimulateFleet(FleetConfig{
		Evaluators:  8,
		Tasks:       tasks,
		Speculation: SpeculationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.Speculated != 0 {
		t.Fatalf("uniform workload speculated %d times", on.Speculated)
	}
	if on.Makespan != off.Makespan {
		t.Fatalf("speculation changed a straggler-free makespan: %v vs %v", on.Makespan, off.Makespan)
	}
}

func TestDurationQuantile(t *testing.T) {
	ds := []time.Duration{4 * time.Second, time.Second, 3 * time.Second, 2 * time.Second}
	if got := DurationQuantile(ds, 0); got != time.Second {
		t.Fatalf("q0 = %v", got)
	}
	if got := DurationQuantile(ds, 1); got != 4*time.Second {
		t.Fatalf("q1 = %v", got)
	}
	if got := DurationQuantile(ds, 0.5); got != 3*time.Second {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := DurationQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}
