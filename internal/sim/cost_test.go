package sim

import (
	"math/rand"
	"testing"
	"time"

	"swtnas/internal/obs"
	"swtnas/internal/trace"
)

// snapshotWith builds an obs snapshot containing the calibration histograms.
func snapshotWith(t *testing.T, evalSecs []float64, ckptBytes []float64) *obs.Snapshot {
	t.Helper()
	r := obs.NewRegistry()
	r.SetEnabled(true)
	eh := r.GetHistogram("nas.eval.seconds", obs.DurationBuckets)
	for _, v := range evalSecs {
		eh.Observe(v)
	}
	sh := r.GetHistogram("checkpoint.store.save.size", obs.SizeBuckets)
	wh := r.GetHistogram("checkpoint.store.save.seconds", obs.DurationBuckets)
	for _, v := range ckptBytes {
		sh.Observe(v)
		wh.Observe(v / 100e6) // 100 MB/s effective write path
	}
	rh := r.GetHistogram("cluster.rpc.seconds", obs.DurationBuckets)
	for i := 0; i < 50; i++ {
		rh.Observe(0.004)
	}
	return r.Take()
}

func TestCalibrateFallsBackToDefaults(t *testing.T) {
	cm := Calibrate(nil)
	if cm.Eval == nil || cm.CheckpointBytes == nil {
		t.Fatal("nil snapshot must produce a usable default model")
	}
	if len(cm.Defaulted) == 0 {
		t.Fatal("default model must report defaulted fields")
	}
	empty := obs.NewRegistry().Take()
	cm = Calibrate(empty)
	if len(cm.Calibrated) != 0 {
		t.Fatalf("empty snapshot calibrated %v", cm.Calibrated)
	}
	rng := rand.New(rand.NewSource(1))
	if got := cm.Eval.Sample(rng); got != 6.0 {
		t.Fatalf("default eval sample = %v, want 6.0", got)
	}
}

func TestCalibrateUsesSnapshotHistograms(t *testing.T) {
	evals := []float64{2, 2.5, 3, 3.5, 4}
	bytes := []float64{30e6, 35e6, 40e6, 45e6}
	cm := Calibrate(snapshotWith(t, evals, bytes))
	want := map[string]bool{"eval": true, "checkpoint-bytes": true, "dispatch": true, "fs": true}
	for _, name := range cm.Calibrated {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("not calibrated: %v (got %v)", want, cm.Calibrated)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if v := cm.Eval.Sample(rng); v < 2 || v > 4 {
			t.Fatalf("eval sample %v outside observed [2, 4]", v)
		}
		if b := cm.CheckpointBytes.Sample(rng); b < 30e6 || b > 45e6 {
			t.Fatalf("bytes sample %v outside observed range", b)
		}
	}
	if cm.Dispatch <= 0 || cm.Dispatch > 100*time.Millisecond {
		t.Fatalf("dispatch = %v, want the ~4ms RPC median", cm.Dispatch)
	}
	// ~100 MB/s effective write bandwidth from the size/latency means.
	if cm.FS.WriteBandwidth < 50e6 || cm.FS.WriteBandwidth > 200e6 {
		t.Fatalf("write bandwidth = %v, want ~100e6", cm.FS.WriteBandwidth)
	}
	if cm.FS.Serialized {
		t.Fatal("calibrated FS must be non-serialized (contention already measured)")
	}
}

func TestCostModelTasksDeterministic(t *testing.T) {
	cm := Calibrate(snapshotWith(t, []float64{1, 2, 3}, []float64{10e6, 20e6}))
	a := cm.Tasks(32, 0.5, rand.New(rand.NewSource(9)))
	b := cm.Tasks(32, 0.5, rand.New(rand.NewSource(9)))
	if len(a) != 32 {
		t.Fatalf("len = %d", len(a))
	}
	transfers := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d diverged: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].TrainTime <= 0 || a[i].CheckpointBytes <= 0 {
			t.Fatalf("task %d has empty costs: %+v", i, a[i])
		}
		if a[i].LoadParent {
			transfers++
		}
	}
	if transfers == 0 || transfers == len(a) {
		t.Fatalf("transfer fraction 0.5 produced %d/%d transfers", transfers, len(a))
	}
}

func traceFor(n, workers int, evalTime time.Duration) *trace.Trace {
	tr := &trace.Trace{App: "t", Scheme: "LCS", Seed: 1}
	// Ideal FCFS completion offsets on the given worker count.
	for i := 0; i < n; i++ {
		wave := i/workers + 1
		tr.Records = append(tr.Records, trace.Record{
			ID:              i,
			Score:           0.5,
			TrainTime:       evalTime,
			EvalTime:        evalTime,
			CheckpointBytes: 1e6,
			CompletedAt:     time.Duration(wave) * evalTime,
		})
	}
	return tr
}

func TestReplayPredictsIdealTrace(t *testing.T) {
	tr := traceFor(40, 4, 2*time.Second)
	cm := DefaultCostModel()
	cm.Dispatch = 0
	rep, err := Replay(tr, 4, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured != 20*time.Second {
		t.Fatalf("measured = %v, want 20s", rep.Measured)
	}
	if rep.Predicted != rep.Measured {
		t.Fatalf("ideal trace must replay exactly: predicted %v measured %v", rep.Predicted, rep.Measured)
	}
	if rep.Error != 0 {
		t.Fatalf("error = %v, want 0", rep.Error)
	}
}

func TestReplayInfersWorkers(t *testing.T) {
	tr := traceFor(40, 8, time.Second)
	cm := DefaultCostModel()
	cm.Dispatch = 0
	rep, err := Replay(tr, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WorkersInferred || rep.Workers != 8 {
		t.Fatalf("inferred workers = %d (inferred=%v), want 8", rep.Workers, rep.WorkersInferred)
	}
	if rep.Error > 0.01 {
		t.Fatalf("inferred replay error = %v", rep.Error)
	}
}

func TestReplaySkipsFailedAndFilteredRecords(t *testing.T) {
	tr := traceFor(20, 4, time.Second)
	tr.Records = append(tr.Records, trace.Record{ID: 20, Failed: true, FailReason: "retries exhausted"})
	tr.Filtered = append(tr.Filtered,
		trace.FilteredRecord{Seq: 1, ProxyScore: 0.1},
		trace.FilteredRecord{Seq: 2, ProxyScore: 0.2},
	)
	cm := DefaultCostModel()
	cm.Dispatch = 0
	rep, err := Replay(tr, 4, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 20 || rep.SkippedFailed != 1 || rep.SkippedFiltered != 2 {
		t.Fatalf("tasks/skipped = %d/%d/%d, want 20/1/2", rep.Tasks, rep.SkippedFailed, rep.SkippedFiltered)
	}
	if rep.Predicted != rep.Measured {
		t.Fatalf("failed/filtered records perturbed the replay: %v vs %v", rep.Predicted, rep.Measured)
	}
	// A trace of only failures cannot be replayed.
	bad := &trace.Trace{Records: []trace.Record{{Failed: true}}}
	if _, err := Replay(bad, 1, cm); err == nil {
		t.Fatal("all-failed trace must error")
	}
}

func TestReplayFallsBackToTrainTime(t *testing.T) {
	// Traces from before EvalTime was recorded replay on TrainTime.
	tr := traceFor(10, 2, time.Second)
	for i := range tr.Records {
		tr.Records[i].EvalTime = 0
	}
	cm := DefaultCostModel()
	cm.Dispatch = 0
	rep, err := Replay(tr, 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted != rep.Measured {
		t.Fatalf("TrainTime fallback replay: predicted %v measured %v", rep.Predicted, rep.Measured)
	}
}
