package sim

import (
	"math/rand"
	"sort"
	"time"

	"swtnas/internal/obs"
)

// Sampler draws values from a cost distribution. obs.HistogramSnapshot
// satisfies it directly, so a histogram recorded by a real run — eval
// latency, checkpoint sizes — plugs in as an empirical sampler with no
// conversion.
type Sampler interface {
	Sample(rng *rand.Rand) float64
}

// Const is a degenerate Sampler that always returns its value — the
// hand-set-constant fallback when a run's snapshot lacks a histogram.
type Const float64

// Sample implements Sampler.
func (c Const) Sample(*rand.Rand) float64 { return float64(c) }

// CostModel holds the per-task cost distributions the fleet simulator draws
// from. Build one with DefaultCostModel (hand-set constants in the paper's
// NT3 regime) or Calibrate (fit from a real run's obs snapshot).
type CostModel struct {
	// Eval samples one candidate's end-to-end evaluation latency in
	// seconds (build + transfer + train + checkpoint, as nas.eval.seconds
	// measures it).
	Eval Sampler
	// CheckpointBytes samples the encoded checkpoint size in bytes.
	CheckpointBytes Sampler
	// Dispatch is the serialized per-task cost at the coordinator — the
	// RPC round-trip median in distributed runs.
	Dispatch time.Duration
	// ParallelFraction is the Amdahl parallel fraction of evaluation work;
	// the fleet engine scales task durations by (1-p) + p/k for k kernel
	// workers. Zero means Eval samples are taken as-is — correct when the
	// histogram was recorded at the worker counts being simulated.
	ParallelFraction float64
	// FS is the checkpoint-I/O model, with bandwidths derived from the
	// size and latency histograms when both are present.
	FS FSModel
	// Calibrated and Defaulted record which metrics fed the model and
	// which fields kept hand-set constants — surfaced by replay reports so
	// a prediction's provenance is auditable.
	Calibrated []string
	Defaulted  []string
}

// DefaultCostModel returns hand-set constants in the paper's NT3 regime:
// ~6 s evaluations, ~40 MB checkpoints, a fast local coordinator.
func DefaultCostModel() CostModel {
	return CostModel{
		Eval:            Const(6.0),
		CheckpointBytes: Const(40e6),
		Dispatch:        time.Millisecond,
		FS:              DefaultFS(),
		Defaulted:       []string{"eval", "checkpoint-bytes", "dispatch", "fs"},
	}
}

// Calibrate fits a CostModel from a real run's metrics snapshot, replacing
// each hand-set constant with an empirical sampler wherever the run recorded
// the corresponding histogram:
//
//	nas.eval.seconds              -> Eval
//	checkpoint.store.save.size    -> CheckpointBytes
//	cluster.rpc.seconds (p50)     -> Dispatch
//	size/latency histogram means  -> FS read/write bandwidth
//
// Missing or empty histograms keep the DefaultCostModel constants; the
// Calibrated/Defaulted lists say which is which.
func Calibrate(s *obs.Snapshot) CostModel {
	cm := DefaultCostModel()
	if s == nil {
		return cm
	}
	cm.Calibrated, cm.Defaulted = nil, nil
	hist := func(name string) (obs.HistogramSnapshot, bool) {
		h, ok := s.Histograms[name]
		return h, ok && h.Count > 0
	}
	if h, ok := hist("nas.eval.seconds"); ok {
		cm.Eval = h
		cm.Calibrated = append(cm.Calibrated, "eval")
	} else {
		cm.Defaulted = append(cm.Defaulted, "eval")
	}
	sizes, haveSizes := hist("checkpoint.store.save.size")
	if haveSizes {
		cm.CheckpointBytes = sizes
		cm.Calibrated = append(cm.Calibrated, "checkpoint-bytes")
	} else {
		cm.Defaulted = append(cm.Defaulted, "checkpoint-bytes")
	}
	if h, ok := hist("cluster.rpc.seconds"); ok {
		cm.Dispatch = time.Duration(h.Quantile(0.5) * float64(time.Second))
		cm.Calibrated = append(cm.Calibrated, "dispatch")
	} else {
		cm.Defaulted = append(cm.Defaulted, "dispatch")
	}
	// Effective FS bandwidths: mean bytes per save over mean seconds per
	// save/load. Measured latencies already include real contention, so the
	// calibrated FS is non-serialized per-op cost.
	fsFitted := false
	if haveSizes {
		meanBytes := sizes.Mean()
		if w, ok := hist("checkpoint.store.save.seconds"); ok && w.Mean() > 0 {
			cm.FS.WriteBandwidth = meanBytes / w.Mean()
			fsFitted = true
		}
		if r, ok := hist("checkpoint.store.load.seconds"); ok && r.Mean() > 0 {
			cm.FS.ReadBandwidth = meanBytes / r.Mean()
			fsFitted = true
		}
	}
	if fsFitted {
		cm.FS.Serialized = false
		cm.FS.PerOpLatency = 0
		cm.Calibrated = append(cm.Calibrated, "fs")
	} else {
		cm.Defaulted = append(cm.Defaulted, "fs")
	}
	return cm
}

// Tasks generates a synthetic workload of n tasks by sampling the cost
// model: evaluation durations and checkpoint sizes are independent draws,
// and a transferFrac fraction of tasks load a provider checkpoint first
// (the weight-transfer read path). Deterministic for a seeded rng.
func (cm CostModel) Tasks(n int, transferFrac float64, rng *rand.Rand) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			TrainTime:       time.Duration(cm.Eval.Sample(rng) * float64(time.Second)),
			CheckpointBytes: int64(cm.CheckpointBytes.Sample(rng)),
			LoadParent:      transferFrac > 0 && rng.Float64() < transferFrac,
		}
	}
	return tasks
}

// DurationQuantile returns the q-quantile of ds by nearest-rank on a sorted
// copy — the speculation threshold base in both the simulator and the real
// coordinator (cluster.FaultConfig.SpeculativeQuantile).
func DurationQuantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1)+0.5)]
}
