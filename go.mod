module swtnas

go 1.22
