package swtnas

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"swtnas/internal/obs"
)

// metricsDoc is the slice of the /debug/metrics document the smoke tests
// assert on.
type metricsDoc struct {
	Counters   map[string]int64 `json:"counters"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

// TestSearchMetricsSmoke is the end-to-end observability check: a
// metrics-enabled search must attach a summary whose metrics document has
// nonzero GEMM, checkpoint and per-candidate latency series — the same
// acceptance the full `cmd/swtnas -metrics-dump` run is held to.
func TestSearchMetricsSmoke(t *testing.T) {
	prev := obs.SetEnabled(false)
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.Reset()
	})

	res, err := Search(SearchOptions{
		App: "nt3", Scheme: "LCS", Budget: 8, Workers: 2, Seed: 7,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	s := res.Summary
	if s == nil {
		t.Fatal("metrics-enabled search returned no summary")
	}
	if s.Candidates != 8 || s.WallTime <= 0 {
		t.Fatalf("summary header = %+v", s)
	}
	if s.BestScore == 0 || math.IsInf(s.BestScore, -1) {
		t.Fatalf("summary best score = %v", s.BestScore)
	}
	if s.Transferred+s.Scratch != s.Candidates {
		t.Fatalf("transfer split %d+%d != %d", s.Transferred, s.Scratch, s.Candidates)
	}
	if s.Eval.Count != 8 || s.Eval.Mean <= 0 || s.Eval.Max < s.Eval.P50 {
		t.Fatalf("eval latency stats = %+v", s.Eval)
	}
	if s.Gemm.Count == 0 || s.Gemm.Mean <= 0 {
		t.Fatalf("gemm latency stats = %+v", s.Gemm)
	}

	var doc metricsDoc
	if err := json.Unmarshal(s.Metrics, &doc); err != nil {
		t.Fatalf("summary metrics document: %v", err)
	}
	for _, name := range []string{
		"tensor.gemm.calls",
		"tensor.gemm.flops",
		"checkpoint.encode.bytes",
		"checkpoint.store.load.hits",
		"nas.candidates.transfer",
	} {
		if doc.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, doc.Counters[name])
		}
	}
	for _, name := range []string{
		"tensor.gemm.seconds",
		"checkpoint.encode.seconds",
		"checkpoint.store.save.seconds",
		"nas.eval.seconds",
		"nas.queue.wait.seconds",
	} {
		h, ok := doc.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %q missing or empty in metrics document", name)
		}
	}

	// Per-candidate latency series surfaced on the candidates themselves.
	for _, c := range res.Candidates {
		if c.EvalTime <= 0 {
			t.Errorf("candidate %d: EvalTime = %v, want > 0", c.ID, c.EvalTime)
		}
		if c.EvalTime < c.TrainTime {
			t.Errorf("candidate %d: EvalTime %v < TrainTime %v", c.ID, c.EvalTime, c.TrainTime)
		}
	}
}

// TestDebugMetricsEndpointLive drives the HTTP edge: a live /debug/metrics
// endpoint polled over real TCP while a search runs must serve a JSON
// document containing the GEMM series.
func TestDebugMetricsEndpointLive(t *testing.T) {
	prev := obs.SetEnabled(false)
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.Reset()
	})

	srv, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer srv.Close()

	var polled metricsDoc
	opt := SearchOptions{
		App: "nt3", Scheme: "LCS", Budget: 4, Seed: 9,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		Progress: func(c Candidate) {
			if polled.Counters != nil {
				return // one poll mid-search is enough
			}
			resp, err := http.Get(srv.URL())
			if err != nil {
				t.Errorf("GET %s: %v", srv.URL(), err)
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("content type = %q", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("reading metrics body: %v", err)
				return
			}
			if err := json.Unmarshal(body, &polled); err != nil {
				t.Errorf("metrics endpoint served invalid JSON: %v", err)
			}
		},
	}
	if _, err := Search(opt); err != nil {
		t.Fatal(err)
	}
	if polled.Counters == nil {
		t.Fatal("metrics endpoint was never polled")
	}
	if polled.Counters["tensor.gemm.calls"] <= 0 {
		t.Errorf("live endpoint gemm calls = %d, want > 0", polled.Counters["tensor.gemm.calls"])
	}
}
