// Command swtnas-server runs the NAS service: a long-lived HTTP/JSON server
// owning one shared evaluator pool and one journal directory, running many
// concurrent searches with per-tenant quotas and crash-safe resume. Submit
// searches with POST /v1/searches, stream progress from
// /v1/searches/{id}/events, fetch partial results from
// /v1/searches/{id}/topk, and scrape Prometheus metrics from /metrics. If
// the process is killed, restarting it against the same -data-dir resumes
// every unfinished search from its journal.
//
// Usage:
//
//	swtnas-server -addr :8080 -data-dir /var/lib/swtnas
//	swtnas-server -addr :8080 -data-dir ./runs -pool-workers 8 -max-active 4
//	swtnas-server -data-dir ./runs -tenant-proxy-defaults "teamA=0.5,teamB=off"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swtnas"
	"swtnas/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtnas-server: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		dataDir   = flag.String("data-dir", "", "directory for search journals and metadata (required)")
		workers   = flag.Int("pool-workers", 0, "evaluator pool slots shared by all searches (0 = all cores)")
		maxActive = flag.Int("max-active", 0, "admission quota: concurrent searches across all tenants (0 = unlimited)")
		maxTenant = flag.Int("max-tenant", 0, "admission quota: concurrent searches per tenant (0 = unlimited)")
		tenantPxy = flag.String("tenant-proxy-defaults", "", `per-tenant default proxy-admission modes, e.g. "teamA=0.5,teamB=off"`)
		dtype     = flag.String("dtype", "", "default training element type for submissions that omit dtype: f64 (default) or f32")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data-dir is required")
	}
	tenantDefaults, err := serve.ParseTenantDefaults(*tenantPxy)
	if err != nil {
		log.Fatal(err)
	}

	s, err := serve.New(serve.Config{
		DataDir: *dataDir,
		Pool: swtnas.PoolOptions{
			Workers:              *workers,
			MaxActiveSearches:    *maxActive,
			MaxSearchesPerTenant: *maxTenant,
		},
		TenantDefaults: tenantDefaults,
		DefaultDType:   *dtype,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving on http://%s (data dir %s)\n", *addr, *dataDir)

	// SIGINT/SIGTERM: stop accepting requests, then shut the search layer
	// down crash-like — running searches keep their journals unmarked, so
	// the next start resumes them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		s.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("shutting down; unfinished searches resume on next start")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	s.Close()
}
