// Command swtnas-trace analyzes search traces written by cmd/swtnas
// (-trace out.json): per-run summaries including the lineage-depth
// statistics that explain weight transfer's effect, and CSV export for
// plotting Figure 7 style curves.
//
// Usage:
//
//	swtnas-trace summary run1.json run2.json
//	swtnas-trace csv run1.json > run1.csv
//	swtnas-trace compare baseline.json lcs.json
package main

import (
	"fmt"
	"log"
	"os"

	"swtnas/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtnas-trace: ")
	if len(os.Args) < 3 {
		log.Fatal("usage: swtnas-trace summary|csv|compare <trace.json> [...]")
	}
	cmd, paths := os.Args[1], os.Args[2:]
	traces := make([]*trace.Trace, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		traces[i] = tr
	}

	switch cmd {
	case "summary":
		for i, tr := range traces {
			if i > 0 {
				fmt.Println()
			}
			tr.WriteSummary(os.Stdout)
		}
	case "csv":
		if len(traces) != 1 {
			log.Fatal("csv takes exactly one trace")
		}
		if err := traces[0].WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "compare":
		fmt.Printf("%-10s %-10s %10s %10s %10s %12s\n", "app", "scheme", "best", "mean", "p50", "lineage")
		for _, tr := range traces {
			s := tr.Summarize()
			quart := tr.ScoreQuantiles(4)
			p50 := 0.0
			if len(quart) == 5 {
				p50 = quart[2]
			}
			fmt.Printf("%-10s %-10s %10.4f %10.4f %10.4f %12.2f\n",
				s.App, s.Scheme, s.BestScore, s.MeanScore, p50, s.MeanLineage)
		}
	default:
		log.Fatalf("unknown command %q (summary, csv, compare)", cmd)
	}
}
