// Command swtnas-trace analyzes search traces written by cmd/swtnas
// (-trace out.json): per-run summaries including the lineage-depth
// statistics that explain weight transfer's effect, CSV export for
// plotting Figure 7 style curves, and trace replay through the calibrated
// simulator (predicted vs measured makespan).
//
// Usage:
//
//	swtnas-trace summary run1.json run2.json
//	swtnas-trace csv run1.json > run1.csv
//	swtnas-trace compare baseline.json lcs.json
//	swtnas-trace replay -metrics metrics.json run1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"swtnas/internal/obs"
	"swtnas/internal/sim"
	"swtnas/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtnas-trace: ")
	if len(os.Args) < 3 {
		log.Fatal("usage: swtnas-trace summary|csv|compare|replay <trace.json> [...]")
	}
	cmd, paths := os.Args[1], os.Args[2:]
	if cmd == "replay" {
		runReplay(paths)
		return
	}
	traces := make([]*trace.Trace, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		traces[i] = tr
	}

	switch cmd {
	case "summary":
		for i, tr := range traces {
			if i > 0 {
				fmt.Println()
			}
			tr.WriteSummary(os.Stdout)
		}
	case "csv":
		if len(traces) != 1 {
			log.Fatal("csv takes exactly one trace")
		}
		if err := traces[0].WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "compare":
		fmt.Printf("%-10s %-10s %10s %10s %10s %12s\n", "app", "scheme", "best", "mean", "p50", "lineage")
		for _, tr := range traces {
			s := tr.Summarize()
			quart := tr.ScoreQuantiles(4)
			p50 := 0.0
			if len(quart) == 5 {
				p50 = quart[2]
			}
			fmt.Printf("%-10s %-10s %10.4f %10.4f %10.4f %12.2f\n",
				s.App, s.Scheme, s.BestScore, s.MeanScore, p50, s.MeanLineage)
		}
	default:
		log.Fatalf("unknown command %q (summary, csv, compare, replay)", cmd)
	}
}

// runReplay implements the replay subcommand: feed a recorded trace back
// through the fleet simulator under a cost model calibrated from the run's
// own metrics dump (swtnas -metrics-dump), and report predicted vs measured
// makespan.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	workers := fs.Int("workers", 0, "evaluator count (0 = infer from the trace's concurrency)")
	metrics := fs.String("metrics", "", "metrics snapshot JSON to calibrate the cost model from (default: hand-set constants)")
	asJSON := fs.Bool("json", false, "emit the full replay report as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("replay takes exactly one trace")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatalf("%s: %v", fs.Arg(0), err)
	}

	cm := sim.DefaultCostModel()
	if *metrics != "" {
		raw, err := os.ReadFile(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			log.Fatalf("%s: %v", *metrics, err)
		}
		cm = sim.Calibrate(&snap)
	}

	rep, err := sim.Replay(tr, *workers, cm)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	inferred := ""
	if rep.WorkersInferred {
		inferred = " (inferred)"
	}
	fmt.Printf("workers     %d%s\n", rep.Workers, inferred)
	fmt.Printf("tasks       %d (skipped %d failed, %d filtered)\n", rep.Tasks, rep.SkippedFailed, rep.SkippedFiltered)
	fmt.Printf("measured    %v\n", rep.Measured)
	fmt.Printf("predicted   %v\n", rep.Predicted)
	fmt.Printf("error       %.2f%%\n", rep.Error*100)
	fmt.Printf("calibrated  %s\n", orDash(rep.Calibrated))
	fmt.Printf("defaulted   %s\n", orDash(rep.Defaulted))
}

func orDash(fields []string) string {
	if len(fields) == 0 {
		return "-"
	}
	return strings.Join(fields, ", ")
}
