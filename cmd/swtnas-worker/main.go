// Command swtnas-worker is a remote evaluator: it connects to a scheduler's
// coordinator over TCP, fetches candidate-evaluation tasks, trains them
// locally, and streams results (including checkpoints) back — the stand-in
// for the paper's per-GPU Ray evaluators.
//
// Usage:
//
//	swtnas-worker -addr 10.0.0.1:7077 -id node3-gpu0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"swtnas/internal/cluster"
	"swtnas/internal/obs"
	"swtnas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtnas-worker: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "coordinator address")
		id       = flag.String("id", "", "worker id (default host-pid)")
		kworkers = flag.Int("kernel-workers", 0, "compute-kernel pool size: cores this worker may use (0 = $"+parallel.EnvWorkers+" or all cores)")
		mAddr    = flag.String("metrics-addr", "", "serve live metrics JSON on this address at "+obs.MetricsPath+" (Prometheus text at "+obs.PromPath+")")
		beat     = flag.Duration("heartbeat", 2*time.Second, "liveness-ping period; the coordinator requeues this worker's tasks if pings stop")
		dtype    = flag.String("dtype", "", "training element type for tasks that ship none: f64 (default) or f32")
	)
	flag.Parse()
	if *kworkers > 0 {
		// Several workers on one node partition its cores between them.
		parallel.SetWorkers(*kworkers)
	}
	if *mAddr != "" {
		srv, err := obs.Serve(*mAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("metrics: %s", srv.URL())
	}
	workerID := *id
	if workerID == "" {
		host, _ := os.Hostname()
		workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &cluster.Worker{ID: workerID, HeartbeatEvery: *beat, DType: *dtype}
	log.Printf("worker %s connecting to %s", workerID, *addr)
	if err := w.Run(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("worker %s shut down cleanly", workerID)
}
