// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section VIII).
//
// Usage:
//
//	experiments -scale quick all
//	experiments -scale paper fig7 fig8 table3
//	experiments -apps nt3,uno -seeds 3 -budget 120 fig7
//
// Experiments: table1 fig2 fig3 fig4 fig5 fig7 fig8 table3 table4 fig9
// fig10 fig11 proxy dist sim dtype all. Searches are shared between
// experiments within one invocation (fig7/fig8/fig9/fig10/fig11/proxy/
// table3/table4/dtype reuse the same campaign runs, as the paper does).
// proxy is the zero-cost-score rank-correlation study behind
// -proxy-filter: Kendall's tau of each pre-training score against fully
// trained metrics, per app. dtype is the float32 rank-fidelity study
// behind -dtype f32: the same search per dtype, Kendall's tau between the
// paired f32/f64 candidate scores plus the final-best delta. dist reruns the
// searches over real TCP workers via cluster.RunDistributed and reports
// per-scheme summaries with kernel-level obs metric deltas; -workers sets
// its evaluator count. sim is the calibrated fleet scale study: a cost model
// fitted from a real run's metrics drives the discrete-event simulator from
// 16 to 4096 evaluators, with and without speculative re-execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"swtnas/internal/experiments"
)

var order = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "table3", "table4", "fig9", "fig10", "fig11", "proxy", "dtype", "dist", "sim"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale   = flag.String("scale", "quick", "quick or paper")
		seeds   = flag.Int("seeds", 0, "override repetition count")
		budget  = flag.Int("budget", 0, "override per-search candidate budget")
		appsF   = flag.String("apps", "", "comma-separated application subset")
		seed    = flag.Int64("seed", 0, "override base seed")
		workers = flag.Int("workers", 0, "override worker count (dist: TCP evaluators)")
		trainN  = flag.Int("train", 0, "override training samples per app (CI-speed runs)")
		valN    = flag.Int("val", 0, "override validation samples per app")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick()
	case "paper":
		cfg = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q (quick or paper)", *scale)
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *appsF != "" {
		cfg.Apps = strings.Split(*appsF, ",")
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *trainN > 0 {
		cfg.TrainN = *trainN
	}
	if *valN > 0 {
		cfg.ValN = *valN
	}

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	if len(names) == 1 && names[0] == "all" {
		names = order
	}

	suite := experiments.NewSuite(cfg)
	w := os.Stdout
	for _, name := range names {
		fmt.Fprintf(w, "==> %s (scale=%s, seeds=%d, budget=%d)\n", name, *scale, cfg.Seeds, cfg.Budget)
		var err error
		switch name {
		case "table1":
			_, err = suite.Table1(w)
		case "fig2":
			_, err = suite.Fig2(w)
		case "fig3":
			err = suite.Fig3(w)
		case "fig4":
			_, err = suite.Fig4(w)
		case "fig5":
			_, err = suite.Fig5(w)
		case "fig7":
			_, _, err = suite.Fig7(w)
		case "fig8":
			_, _, err = suite.Fig8(w)
		case "table3":
			_, err = suite.Table3(w)
		case "table4":
			_, err = suite.Table4(w)
		case "fig9":
			_, err = suite.Fig9(w)
		case "fig10":
			_, err = suite.Fig10(w)
		case "fig11":
			_, err = suite.Fig11(w)
		case "proxy":
			_, err = suite.Proxy(w)
		case "dtype":
			_, err = suite.Dtype(w)
		case "dist":
			_, err = suite.Dist(w)
		case "sim":
			_, err = suite.Sim(w)
		default:
			log.Fatalf("unknown experiment %q (valid: %s, all)", name, strings.Join(order, " "))
		}
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(w)
	}
}
