// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish kernel benchmark results as a machine-readable
// artifact and successive runs can be diffed.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//
// Lines that are not benchmark results (test output, PASS/ok trailers) are
// ignored; goos/goarch/cpu/pkg headers are captured into the document head.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -procs suffix, e.g. "BenchmarkConv2DForward/b=8-16".
	Name string `json:"name"`
	// Pkg is the package the result came from (the nearest preceding
	// "pkg:" header, empty if none was printed).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds any further unit/value pairs (B/op, allocs/op, MB/s,
	// custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", `output file ("-" = stdout)`)
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found on stdin")
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue // a test logging something Benchmark-prefixed
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-16   123   4567 ns/op   89 B/op   2 allocs/op
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}
