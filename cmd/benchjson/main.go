// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish kernel benchmark results as a machine-readable
// artifact and successive runs can be diffed.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//	go test -bench . -benchtime 1x ./... | benchjson -diff BENCH.json -tol 50
//
// Lines that are not benchmark results (test output, PASS/ok trailers) are
// ignored; goos/goarch/cpu/pkg headers are captured into the document head.
//
// With -diff, the parsed results are compared against a baseline document:
// a benchmark present in the baseline but missing from the run fails (the
// benchmark suite silently shrank), and a benchmark whose ns/op exceeds the
// baseline by more than -tol percent fails. -floor-ns skips the timing
// comparison for baselines faster than the floor, where scheduler noise
// dominates real regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -procs suffix, e.g. "BenchmarkConv2DForward/b=8-16".
	Name string `json:"name"`
	// Pkg is the package the result came from (the nearest preceding
	// "pkg:" header, empty if none was printed).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds any further unit/value pairs (B/op, allocs/op, MB/s,
	// custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", `output file ("-" = stdout, "" = none)`)
	baseline := flag.String("diff", "", "baseline JSON document to compare against; regressions exit nonzero")
	tol := flag.Float64("tol", 10, "allowed ns/op regression over the -diff baseline, in percent")
	floorNs := flag.Float64("floor-ns", 0, "in -diff mode, skip the timing check when the baseline ns/op is below this (noise floor)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found on stdin")
	}
	if *out != "" {
		w := io.Writer(os.Stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}
	if *baseline != "" {
		base, err := loadDoc(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		problems := diff(base, doc, *tol, *floorNs)
		for _, p := range problems {
			log.Print(p)
		}
		if len(problems) > 0 {
			log.Fatalf("%d regression(s) against %s (tolerance %.0f%%)", len(problems), *baseline, *tol)
		}
		log.Printf("no regressions against %s (%d benchmarks, tolerance %.0f%%)", *baseline, len(base.Benchmarks), *tol)
	}
}

// loadDoc reads a previously emitted JSON document.
func loadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &doc, nil
}

// benchKey identifies a benchmark across documents. The name includes the
// -procs suffix, so runs must use matching GOMAXPROCS to compare.
func benchKey(b Benchmark) string { return b.Pkg + " " + b.Name }

// diff reports every baseline benchmark the run lost and every benchmark
// whose ns/op regressed beyond tol percent. Improvements and benchmarks new
// in the run pass silently.
func diff(base, cur *Doc, tolPct, floorNs float64) []string {
	got := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		got[benchKey(b)] = b
	}
	var problems []string
	for _, b := range base.Benchmarks {
		c, ok := got[benchKey(b)]
		if !ok {
			problems = append(problems, fmt.Sprintf("missing benchmark %s (present in baseline)", benchKey(b)))
			continue
		}
		if b.NsPerOp <= 0 || b.NsPerOp < floorNs {
			continue
		}
		limit := b.NsPerOp * (1 + tolPct/100)
		if c.NsPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, tolerance %.0f%%)",
				benchKey(b), c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp, tolPct))
		}
	}
	return problems
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue // a test logging something Benchmark-prefixed
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-16   123   4567 ns/op   89 B/op   2 allocs/op
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}
