package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: swtnas/internal/nn
cpu: Some CPU @ 2.40GHz
BenchmarkConv2DForward/b=8-16         	       1	  12345678 ns/op
BenchmarkDense-16   	     100	     98765 ns/op	    4096 B/op	       3 allocs/op
some test chatter
BenchmarkNotAResultLine with words
PASS
ok  	swtnas/internal/nn	1.234s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkConv2DForward/b=8-16" || b0.Iterations != 1 || b0.NsPerOp != 12345678 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Pkg != "swtnas/internal/nn" {
		t.Fatalf("b0 pkg = %q", b0.Pkg)
	}
	b1 := doc.Benchmarks[1]
	if b1.NsPerOp != 98765 || b1.Metrics["B/op"] != 4096 || b1.Metrics["allocs/op"] != 3 {
		t.Fatalf("b1 = %+v", b1)
	}
}

func TestParseResultRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo started",
		"BenchmarkFoo 12 fast ns/op",
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult(%q) accepted a non-result line", line)
		}
	}
}
