package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: swtnas/internal/nn
cpu: Some CPU @ 2.40GHz
BenchmarkConv2DForward/b=8-16         	       1	  12345678 ns/op
BenchmarkDense-16   	     100	     98765 ns/op	    4096 B/op	       3 allocs/op
some test chatter
BenchmarkNotAResultLine with words
PASS
ok  	swtnas/internal/nn	1.234s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkConv2DForward/b=8-16" || b0.Iterations != 1 || b0.NsPerOp != 12345678 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Pkg != "swtnas/internal/nn" {
		t.Fatalf("b0 pkg = %q", b0.Pkg)
	}
	b1 := doc.Benchmarks[1]
	if b1.NsPerOp != 98765 || b1.Metrics["B/op"] != 4096 || b1.Metrics["allocs/op"] != 3 {
		t.Fatalf("b1 = %+v", b1)
	}
}

func TestParseResultRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo started",
		"BenchmarkFoo 12 fast ns/op",
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult(%q) accepted a non-result line", line)
		}
	}
}

func benchDoc(pairs ...any) *Doc {
	d := &Doc{}
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Benchmarks = append(d.Benchmarks, Benchmark{
			Name: pairs[i].(string), Pkg: "p", Iterations: 1, NsPerOp: pairs[i+1].(float64),
		})
	}
	return d
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := benchDoc("BenchmarkA-4", 1000.0, "BenchmarkB-4", 2000.0)
	cur := benchDoc("BenchmarkA-4", 1050.0, "BenchmarkB-4", 1500.0) // +5%, faster
	if p := diff(base, cur, 10, 0); len(p) != 0 {
		t.Fatalf("unexpected problems: %v", p)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	base := benchDoc("BenchmarkA-4", 1000.0)
	cur := benchDoc("BenchmarkA-4", 1500.0) // +50%
	p := diff(base, cur, 10, 0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkA-4") {
		t.Fatalf("problems = %v, want one ns/op regression", p)
	}
	// The same delta passes under a generous tolerance.
	if p := diff(base, cur, 60, 0); len(p) != 0 {
		t.Fatalf("problems under 60%% tolerance: %v", p)
	}
}

func TestDiffFlagsMissingBenchmark(t *testing.T) {
	base := benchDoc("BenchmarkA-4", 1000.0, "BenchmarkGone-4", 500.0)
	cur := benchDoc("BenchmarkA-4", 1000.0, "BenchmarkNew-4", 700.0)
	p := diff(base, cur, 10, 0)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkGone-4") {
		t.Fatalf("problems = %v, want exactly the missing benchmark", p)
	}
}

func TestDiffFloorSkipsNoise(t *testing.T) {
	base := benchDoc("BenchmarkTiny-4", 100.0) // below the noise floor
	cur := benchDoc("BenchmarkTiny-4", 900.0)
	if p := diff(base, cur, 10, 1000); len(p) != 0 {
		t.Fatalf("floored comparison still flagged: %v", p)
	}
	if p := diff(base, cur, 10, 50); len(p) != 1 {
		t.Fatalf("above-floor regression not flagged: %v", p)
	}
}

func TestDiffKeyIncludesPackage(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{{Name: "BenchmarkX-4", Pkg: "a", NsPerOp: 100}}}
	cur := &Doc{Benchmarks: []Benchmark{{Name: "BenchmarkX-4", Pkg: "b", NsPerOp: 100}}}
	if p := diff(base, cur, 10, 0); len(p) != 1 {
		t.Fatalf("same name in a different package must not satisfy the baseline: %v", p)
	}
}
