// Command docguard is the CI documentation gate. It enforces two invariants
// the test suite cannot see:
//
//  1. Every Go package in the repository carries a package doc comment
//     (the godoc landing paragraph), so `go doc ./internal/...` never
//     returns an undocumented package.
//  2. The code identifiers named in DESIGN.md and README.md still resolve:
//     every inline code span that looks like a Go identifier — Test/
//     Benchmark names, qualified names like tensor.Gemm, camelCase
//     constants like bnBlockRows — must appear in the Go sources. Renaming
//     a kernel or deleting a pinned test without updating the docs fails
//     the build instead of leaving the kernel chapter pointing at nothing.
//  3. Section references point the other way too: every "DESIGN.md §N"
//     (or §N.M) citation in a Go doc comment must resolve to a matching
//     numbered heading in DESIGN.md. Renumbering the design doc — or
//     citing a chapter (such as §14, the dtype architecture) before it is
//     written — fails the build instead of stranding the reader.
//
// Usage (from the repository root, as CI runs it):
//
//	go run ./cmd/docguard
//
// Exit status is nonzero with one line per violation.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	goFiles, pkgDirs, err := collectGo(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docguard: %v\n", err)
		os.Exit(1)
	}

	var violations []string
	violations = append(violations, checkPackageDocs(pkgDirs)...)

	source := readAll(goFiles)
	for _, md := range []string{"DESIGN.md", "README.md"} {
		violations = append(violations, checkDocDrift(filepath.Join(root, md), source)...)
	}
	violations = append(violations, checkSectionRefs(filepath.Join(root, "DESIGN.md"), source)...)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "docguard: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("docguard: %d packages documented, doc identifiers and section refs resolve\n", len(pkgDirs))
}

// collectGo walks the tree for .go files and the directories holding them
// (skipping .git and testdata).
func collectGo(root string) (files []string, dirs map[string][]string, err error) {
	dirs = map[string][]string{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
			dirs[filepath.Dir(path)] = append(dirs[filepath.Dir(path)], path)
		}
		return nil
	})
	return files, dirs, err
}

// checkPackageDocs requires at least one non-test file per package directory
// to carry a package doc comment.
func checkPackageDocs(pkgDirs map[string][]string) []string {
	var out []string
	fset := token.NewFileSet()
	for dir, files := range pkgDirs {
		documented := false
		hasNonTest := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			hasNonTest = true
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				out = append(out, fmt.Sprintf("%s: %v", f, err))
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if hasNonTest && !documented {
			out = append(out, fmt.Sprintf("%s: package has no doc comment on any file", dir))
		}
	}
	return out
}

func readAll(files []string) string {
	var b strings.Builder
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

var (
	inlineSpan = regexp.MustCompile("`([^`\n]+)`")
	// testName matches pinned test/benchmark references.
	testName = regexp.MustCompile(`^(Test|Benchmark)[A-Z]\w*$`)
	// qualified matches dotted identifier chains (tensor.Gemm,
	// SearchOptions.Progress, cluster.tasks.requeued).
	qualified = regexp.MustCompile(`^[A-Za-z]\w*(\.[A-Za-z]\w*)+$`)
	// camel matches unexported camelCase identifiers (bnBlockRows,
	// convArena, actMinChunk).
	camel = regexp.MustCompile(`^[a-z][a-z0-9]*[A-Z]\w*$`)
)

// checkDocDrift extracts identifier-shaped inline code spans from one
// markdown file and requires every dot-separated segment to appear as a
// word in the Go sources. Fenced code blocks are skipped: they hold shell
// transcripts and multi-line examples, not single identifiers.
func checkDocDrift(mdPath, source string) []string {
	data, err := os.ReadFile(mdPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", mdPath, err)}
	}
	var out []string
	checked := map[string]bool{}
	inFence := false
	for _, lineText := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(lineText), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range inlineSpan.FindAllStringSubmatch(lineText, -1) {
			tok := spanToken(m[1])
			if tok == "" || checked[tok] {
				continue
			}
			checked[tok] = true
			for _, seg := range strings.Split(tok, ".") {
				if !wordIn(source, seg) {
					out = append(out, fmt.Sprintf("%s: `%s` names %q, which no longer appears in the Go sources", mdPath, tok, seg))
					break
				}
			}
		}
	}
	return out
}

// spanToken reduces an inline span to a checkable identifier token, or ""
// when the span is not identifier-shaped (paths, flags, filenames, prose).
func spanToken(span string) string {
	tok := strings.Fields(strings.TrimSpace(span))
	if len(tok) == 0 {
		return ""
	}
	t := strings.TrimSuffix(tok[0], "()")
	if strings.ContainsAny(t, "/-=<>{}[]()*%$'\",;:") {
		return ""
	}
	// Filenames (BENCH_5.json, run.swtj) are artifacts, not identifiers.
	switch t[strings.LastIndexByte(t, '.')+1:] {
	case "json", "txt", "md", "go", "yml", "csv", "swtj":
		return ""
	}
	switch {
	case testName.MatchString(t):
		return t
	case camel.MatchString(t):
		return t
	// Qualified chains must mention something exported or camelCase so
	// plain filenames (run.json, bench_output.txt) are not matched.
	case qualified.MatchString(t) && strings.IndexFunc(t, func(r rune) bool { return r >= 'A' && r <= 'Z' }) >= 0:
		return t
	}
	return ""
}

// wordIn reports whether seg appears in source on an identifier boundary.
func wordIn(source, seg string) bool {
	for i := 0; ; {
		j := strings.Index(source[i:], seg)
		if j < 0 {
			return false
		}
		j += i
		before := byte(' ')
		if j > 0 {
			before = source[j-1]
		}
		after := byte(' ')
		if end := j + len(seg); end < len(source) {
			after = source[end]
		}
		if !isWordByte(before) && !isWordByte(after) {
			return true
		}
		i = j + 1
	}
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

var (
	// sectionRef matches DESIGN.md section citations in Go sources
	// ("DESIGN.md §14", "DESIGN.md §9.3").
	sectionRef = regexp.MustCompile(`DESIGN\.md §([0-9]+(?:\.[0-9]+)?)`)
	// sectionHeading matches the numbered markdown headings those
	// citations must resolve to ("## 14. Dtype architecture",
	// "### 9.3 The bit-identical contract").
	sectionHeading = regexp.MustCompile(`^#{2,4} ([0-9]+(?:\.[0-9]+)?)[. ]`)
)

// checkSectionRefs requires every "DESIGN.md §N" citation in the Go
// sources to resolve to a numbered heading in DESIGN.md, so renumbering
// the design doc cannot silently strand code comments.
func checkSectionRefs(mdPath, source string) []string {
	data, err := os.ReadFile(mdPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", mdPath, err)}
	}
	headings := map[string]bool{}
	for _, lineText := range strings.Split(string(data), "\n") {
		if m := sectionHeading.FindStringSubmatch(lineText); m != nil {
			headings[m[1]] = true
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, m := range sectionRef.FindAllStringSubmatch(source, -1) {
		sec := m[1]
		if seen[sec] {
			continue
		}
		seen[sec] = true
		if !headings[sec] {
			out = append(out, fmt.Sprintf("go sources cite DESIGN.md §%s, but %s has no heading numbered %s", sec, mdPath, sec))
		}
	}
	return out
}
