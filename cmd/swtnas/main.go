// Command swtnas runs a neural architecture search with selective weight
// transfer and prints the discovered top-K models.
//
// Usage:
//
//	swtnas -app nt3 -scheme LCS -budget 200 -topk 10 -full
//	swtnas -app cifar10 -scheme LP -budget 400 -workers 4 -trace out.json
//	swtnas -app nt3 -budget 200 -journal run.swtj            # crash-safe
//	swtnas -app nt3 -budget 200 -journal run.swtj -resume    # continue it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swtnas"
	"swtnas/internal/obs"
	"swtnas/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtnas: ")
	var (
		app      = flag.String("app", "nt3", "application: "+strings.Join(swtnas.Applications(), ", "))
		scheme   = flag.String("scheme", "LCS", "estimation scheme: baseline, LP, LCS")
		budget   = flag.Int("budget", 100, "number of candidates to evaluate")
		workers  = flag.Int("workers", 1, "parallel evaluators")
		kworkers = flag.Int("kernel-workers", 0, "cores per candidate evaluation: compute-kernel pool size (0 = $"+parallel.EnvWorkers+" or all cores)")
		seed     = flag.Int64("seed", 1, "search seed")
		popN     = flag.Int("population", 0, "evolution population size (0 = paper default 64)")
		popS     = flag.Int("sample", 0, "evolution sample size (0 = paper default 32)")
		trainN   = flag.Int("train", 0, "training samples (0 = app default)")
		valN     = flag.Int("val", 0, "validation samples (0 = app default)")
		topK     = flag.Int("topk", 5, "top models to report")
		full     = flag.Bool("full", false, "fully train the top-K models (phase 2)")
		ckptDir  = flag.String("ckpt-dir", "", "persist checkpoints in this directory")
		traceTo  = flag.String("trace", "", "write the search trace JSON to this file")
		spaceF   = flag.String("space", "", "JSON search-space spec file (the -app then names only the dataset)")
		describe = flag.Bool("describe", false, "print a layer summary of the best model")
		progress = flag.Bool("progress", true, "print a line per completed candidate")
		mAddr    = flag.String("metrics-addr", "", "serve live metrics JSON on this address (e.g. 127.0.0.1:6060) at "+obs.MetricsPath+" (Prometheus text at "+obs.PromPath+")")
		mDump    = flag.String("metrics-dump", "", `write the search's metrics JSON to this file ("-" = stdout)`)
		journal  = flag.String("journal", "", "crash-resume journal path: append every completed candidate to this write-ahead log")
		resume   = flag.Bool("resume", false, "resume the interrupted search journaled at -journal (same options required)")
		retain   = flag.Int("retain-topk", 0, "garbage-collect checkpoints of evicted candidates outside the running top-K (0 = keep all; must be >= -topk when set)")
		proxyF   = flag.Bool("proxy-filter", false, "pre-screen proposals with zero-cost proxies + an online surrogate; only the best -proxy-admit fraction trains")
		proxyA   = flag.Float64("proxy-admit", 0, "fraction of each proposal batch admitted to training, in (0,1] (0 = default 0.5; needs -proxy-filter)")
		multiObj = flag.Bool("multi-objective", false, "Pareto (score x params) parent selection instead of best-score evolution")
		dtype    = flag.String("dtype", "", "training element type: f64 (default) or f32 (native float32 training, f32 checkpoints)")
	)
	flag.Parse()

	if *mAddr != "" {
		srv, err := obs.Serve(*mAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: %s\n", srv.URL())
	}

	// Ctrl-C / SIGTERM cancels the search between candidates: in-flight
	// evaluations finish, the partial result is reported, and a second
	// signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := swtnas.SearchOptions{
		App: *app, Scheme: *scheme, Budget: *budget, Workers: *workers,
		KernelWorkers: *kworkers,
		Seed:          *seed, PopulationSize: *popN, SampleSize: *popS,
		TrainN: *trainN, ValN: *valN, CheckpointDir: *ckptDir,
		SpaceFile:      *spaceF,
		Metrics:        *mDump != "" || *mAddr != "",
		JournalPath:    *journal,
		Resume:         *resume,
		RetainTopK:     *retain,
		ProxyFilter:    *proxyF,
		ProxyAdmit:     *proxyA,
		MultiObjective: *multiObj,
		DType:          *dtype,
	}
	if *retain > 0 && *retain < *topK {
		log.Fatalf("-retain-topk %d would collect checkpoints the -topk %d report needs", *retain, *topK)
	}
	if err := opt.Validate(); err != nil {
		log.Fatal(strings.TrimPrefix(err.Error(), "swtnas: "))
	}
	if *progress {
		opt.Progress = func(c swtnas.Candidate) {
			src := "scratch"
			if c.TransferredLayers > 0 {
				src = fmt.Sprintf("transfer(%d)<-%s", c.TransferredLayers, fmt.Sprintf("cand-%06d", c.ParentID))
			}
			fmt.Printf("cand %4d  score %.4f  params %7d  %-24s  %s\n",
				c.ID, c.Score, c.Params, src, c.CompletedAt.Round(time.Millisecond))
		}
	}

	start := time.Now()
	res, err := swtnas.SearchContext(ctx, opt)
	if err != nil {
		if res == nil || !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		fmt.Printf("interrupted: %d of %d candidates completed\n", len(res.Candidates), *budget)
		if *journal != "" {
			fmt.Printf("journal %s holds the completed prefix; rerun with -resume to continue\n", *journal)
		}
		if len(res.Candidates) == 0 {
			os.Exit(1)
		}
	}
	fmt.Printf("search %s/%s: %d candidates in %s\n", res.App, res.Scheme, len(res.Candidates), time.Since(start).Round(time.Millisecond))
	if s := res.Summary; s != nil && s.Resumed > 0 {
		fmt.Printf("resumed from journal: %d candidates replayed, %d evaluated in this run\n",
			s.Resumed, len(res.Candidates)-s.Resumed)
	}

	transferred := 0
	for _, c := range res.Candidates {
		if c.TransferredLayers > 0 {
			transferred++
		}
	}
	fmt.Printf("weight transfer warm-started %d of %d candidates\n", transferred, len(res.Candidates))
	if s := res.Summary; s != nil && s.Proxy != nil {
		p := s.Proxy
		fmt.Printf("proxy filter: %d proposals scored, %d admitted, %d rejected (%d surrogate refits, MAE %.4f)\n",
			p.Proposals, p.Admitted, p.Filtered, p.SurrogateRefits, p.SurrogateMAE)
	}

	if s := res.Summary; s != nil && s.Eval.Count > 0 {
		fmt.Printf("eval latency: mean %s  p50 %s  p95 %s  max %s  (queue wait mean %s)\n",
			s.Eval.Mean.Round(time.Millisecond), s.Eval.P50.Round(time.Millisecond),
			s.Eval.P95.Round(time.Millisecond), s.Eval.Max.Round(time.Millisecond),
			s.QueueWait.Mean.Round(time.Microsecond))
	}
	if *mDump != "" {
		if res.Summary == nil || len(res.Summary.Metrics) == 0 {
			log.Fatal("no metrics recorded for this search")
		}
		out := os.Stdout
		if *mDump != "-" {
			f, err := os.Create(*mDump)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if _, err := out.Write(res.Summary.Metrics); err != nil {
			log.Fatal(err)
		}
		if *mDump != "-" {
			fmt.Printf("metrics written to %s\n", *mDump)
		}
	}

	fmt.Printf("\ntop-%d candidates:\n", *topK)
	for i, c := range res.Best(*topK) {
		fmt.Printf(" %2d. score %.4f  params %7d  arch %v\n", i+1, c.Score, c.Params, c.Arch)
		if *describe && i == 0 {
			if err := res.Summarize(c, os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		if *full {
			ft, err := res.FullyTrain(c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("      fully trained: score %.4f after %d epochs (early stop: %v)\n", ft.Score, ft.Epochs, ft.EarlyStopped)
		}
	}

	if *multiObj {
		fmt.Printf("\npareto front (score maximized, params minimized):\n")
		for _, c := range res.ParetoFront() {
			fmt.Printf("    score %.4f  params %7d  arch %v\n", c.Score, c.Params, c.Arch)
		}
	}

	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *traceTo)
	}
}
