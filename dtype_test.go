package swtnas

import (
	"errors"
	"testing"
)

// TestSearchF32EndToEnd runs the same tiny search in both dtypes and pins
// the DESIGN.md §14 contracts at the library surface: the proposal stream is
// dtype-independent (candidates are built and mutated in f64 either way, so
// the architectures match position for position), f32 scores land close to
// their f64 twins, and phase 2 (FullyTrain) restores an f32-tagged
// checkpoint through the f64 path.
func TestSearchF32EndToEnd(t *testing.T) {
	run := func(dtype string) *Result {
		res, err := Search(SearchOptions{
			App: "nt3", Scheme: "LCS", Budget: 8, Seed: 5, DType: dtype,
			TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r64, r32 := run("f64"), run("f32")
	if len(r32.Candidates) != 8 {
		t.Fatalf("f32 search completed %d candidates, want 8", len(r32.Candidates))
	}
	for i, c := range r32.Candidates {
		d := r64.Candidates[i]
		if c.ID != d.ID {
			t.Fatalf("candidate order diverged at %d: f32 id %d, f64 id %d", i, c.ID, d.ID)
		}
		for j, a := range c.Arch {
			if d.Arch[j] != a {
				t.Fatalf("candidate %d arch diverged: f32 %v, f64 %v", c.ID, c.Arch, d.Arch)
			}
		}
		if diff := c.Score - d.Score; diff > 0.15 || diff < -0.15 {
			t.Errorf("candidate %d: f32 score %.4f vs f64 %.4f", c.ID, c.Score, d.Score)
		}
	}
	if _, err := r32.FullyTrain(r32.Best(1)[0]); err != nil {
		t.Fatalf("FullyTrain from an f32 checkpoint: %v", err)
	}
}

func TestSearchDTypeValidation(t *testing.T) {
	for _, bad := range []string{"f16", "double", "F32"} {
		err := SearchOptions{App: "nt3", Budget: 1, DType: bad}.Validate()
		var ie *InvalidOptionError
		if !errors.As(err, &ie) || ie.Field != "DType" {
			t.Fatalf("DType %q: err = %v, want InvalidOptionError{Field: DType}", bad, err)
		}
	}
	for _, ok := range []string{"", "f32", "f64", "float32", "float64"} {
		if err := (SearchOptions{App: "nt3", Budget: 1, DType: ok}).Validate(); err != nil {
			t.Fatalf("DType %q rejected: %v", ok, err)
		}
	}
}
