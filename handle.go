package swtnas

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"swtnas/internal/apps"
	"swtnas/internal/checkpoint"
	"swtnas/internal/core"
	"swtnas/internal/data"
	"swtnas/internal/evo"
	"swtnas/internal/nas"
	"swtnas/internal/obs"
	"swtnas/internal/proxy"
	"swtnas/internal/resilience"
	"swtnas/internal/tensor"
)

// ErrQuotaExceeded is returned by Search.Start when the shared evaluator
// pool's admission limits (PoolOptions.MaxActiveSearches /
// MaxSearchesPerTenant) reject the search. Check with errors.Is.
var ErrQuotaExceeded = nas.ErrQuotaExceeded

// PoolOptions sizes a shared evaluator pool.
type PoolOptions struct {
	// Workers is the number of evaluation slots — how many candidates train
	// concurrently across all searches on the pool. Default GOMAXPROCS.
	Workers int
	// MaxActiveSearches caps concurrently admitted searches (0 = unlimited);
	// Search.Start fails with ErrQuotaExceeded beyond it.
	MaxActiveSearches int
	// MaxSearchesPerTenant caps admitted searches per SearchOptions.Tenant
	// (0 = unlimited).
	MaxSearchesPerTenant int
}

// EvaluatorPool is a long-lived, shared pool of evaluation slots. Many
// concurrent searches (SearchOptions.Pool) run on one pool: a weighted-fair
// scheduler interleaves their candidates slot by slot, per-tenant quotas
// bound admission, and the compute-kernel worker budget is continuously
// re-split across however many evaluations run at once. The serve layer
// keeps one pool for the whole process; tests create small private ones.
type EvaluatorPool struct {
	pool *nas.SharedPool
}

// NewPool creates a shared evaluator pool. Close it when no more searches
// will be submitted.
func NewPool(o PoolOptions) *EvaluatorPool {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &EvaluatorPool{pool: nas.NewSharedPool(nas.PoolConfig{
		Workers:      workers,
		MaxActive:    o.MaxActiveSearches,
		MaxPerTenant: o.MaxSearchesPerTenant,
		KernelSplit:  true,
	})}
}

// Workers reports the pool's slot count.
func (p *EvaluatorPool) Workers() int { return p.pool.Workers() }

// Close stops the pool's slots. Searches still running on it observe
// cancelled evaluations.
func (p *EvaluatorPool) Close() { p.pool.Close() }

// EventKind discriminates Search.Events entries.
type EventKind string

// The event kinds a search streams.
const (
	// EventCandidate carries one completed candidate evaluation.
	EventCandidate EventKind = "candidate"
	// EventFault carries one fault-tolerance decision (retry, terminal
	// failure) taken for this search's evaluations.
	EventFault EventKind = "fault"
	// EventFiltered carries one proposal the proxy pre-filter rejected
	// before training (SearchOptions.ProxyFilter): the Candidate payload
	// has Filtered set, ID -1, and the proxy score that ranked it below
	// the admission cut. Filtered events never count toward Completed,
	// TopK or BestScore.
	EventFiltered EventKind = "filtered"
)

// FaultKind labels one fault-tolerance decision; see the constants.
type FaultKind string

// The fault kinds surfaced in a search's event stream, mirroring the
// scheduler's decisions: requeue and failed are per-candidate, quarantine
// and readmit are per-worker (distributed runs).
const (
	FaultRequeue    FaultKind = "requeue"
	FaultQuarantine FaultKind = "quarantine"
	FaultReadmit    FaultKind = "readmit"
	FaultFailed     FaultKind = "failed"
)

// FaultEvent is one fault-tolerance decision surfaced alongside candidate
// completions: an evaluation failed and was requeued for another attempt, or
// exhausted its retry budget.
type FaultEvent struct {
	// Kind is the decision taken.
	Kind FaultKind `json:"kind"`
	// Worker names the worker involved, empty when not attributable.
	Worker string `json:"worker,omitempty"`
	// CandidateID is the affected candidate, -1 for worker-scoped events.
	CandidateID int `json:"candidate_id"`
	// Reason carries the triggering error.
	Reason string `json:"reason,omitempty"`
	// Attempt counts the executions the candidate has consumed so far.
	Attempt int `json:"attempt,omitempty"`
}

// Event is one entry of a search's progress stream: a completed candidate or
// a fault-tolerance decision.
type Event struct {
	// Kind says which of the payload fields is set.
	Kind EventKind `json:"kind"`
	// Candidate is set for EventCandidate.
	Candidate *Candidate `json:"candidate,omitempty"`
	// Fault is set for EventFault.
	Fault *FaultEvent `json:"fault,omitempty"`
}

// SearchHandle is a handle on one (possibly running) architecture search. New
// creates it, Start launches it, Events/TopK observe it mid-flight, Cancel
// stops it between candidate evaluations, and Wait collects the final
// Result. All methods are safe for concurrent use; the one-shot helpers
// Search/SearchContext are thin wrappers over this handle.
type SearchHandle struct {
	opt SearchOptions

	mu        sync.Mutex
	cond      *sync.Cond
	history   []Event
	closed    bool // no further events
	started   bool
	completed int
	resumed   int
	best      float64
	hasBest   bool

	cancel context.CancelFunc
	done   chan struct{}
	res    *Result
	err    error
}

// New validates the options and returns an idle search handle; nothing runs
// until Start.
func New(opt SearchOptions) (*SearchHandle, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	s := &SearchHandle{opt: opt, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Start launches the search. It returns immediately once the search is
// admitted; progress streams through Events and the final Result through
// Wait. Cancelling ctx stops the search between candidate evaluations, like
// SearchContext. Start fails (and the handle becomes terminal) if the shared
// pool rejects the search — check errors.Is(err, ErrQuotaExceeded) — or if
// the handle was already started.
func (s *SearchHandle) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("swtnas: search already started")
	}
	s.started = true
	s.mu.Unlock()

	var client *nas.PoolClient
	if s.opt.Pool != nil {
		conc := s.opt.Workers
		if conc <= 0 {
			conc = 1
		}
		var err error
		client, err = s.opt.Pool.pool.Register(nas.ClientConfig{
			Tenant:      s.opt.Tenant,
			Weight:      s.opt.Weight,
			Concurrency: conc,
			OnFault:     s.emitFault,
		})
		if err != nil {
			s.finish(nil, err)
			return err
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()
	go s.run(ctx, client)
	return nil
}

// Cancel stops the search between candidate evaluations; in-flight
// evaluations finish and are included. Wait then returns the partial Result
// beside context.Canceled. Cancel before Start is a no-op.
func (s *SearchHandle) Cancel() {
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Done closes when the search has finished (any outcome).
func (s *SearchHandle) Done() <-chan struct{} { return s.done }

// Wait blocks until the search finishes and returns its Result, exactly as
// SearchContext would: a partial Result beside ctx's error on cancellation,
// nil beside the error otherwise. Safe to call repeatedly and from multiple
// goroutines.
func (s *SearchHandle) Wait() (*Result, error) {
	<-s.done
	return s.res, s.err
}

// Completed reports how many candidates have finished so far (replayed ones
// included).
func (s *SearchHandle) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Resumed reports how many of the completed candidates were replayed from a
// crash-resume journal rather than evaluated by this process.
func (s *SearchHandle) Resumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumed
}

// BestScore returns the best score seen so far and whether any candidate has
// completed.
func (s *SearchHandle) BestScore() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.best, s.hasBest
}

// Events returns a channel that first replays every event the search has
// produced so far, then streams new ones live, closing when the search
// finishes. Each call gets an independent stream with the full history — a
// subscriber attaching after a crash-resume sees the whole run, replayed
// candidates marked Resumed. A slow consumer delays only its own stream,
// never the search.
func (s *SearchHandle) Events() <-chan Event {
	ch := make(chan Event, 64)
	go func() {
		defer close(ch)
		next := 0
		for {
			s.mu.Lock()
			for next >= len(s.history) && !s.closed {
				s.cond.Wait()
			}
			if next >= len(s.history) && s.closed {
				s.mu.Unlock()
				return
			}
			batch := s.history[next:len(s.history):len(s.history)]
			next = len(s.history)
			s.mu.Unlock()
			for _, ev := range batch {
				ch <- ev
			}
		}
	}()
	return ch
}

// TopK returns the n highest-scoring candidates completed so far, best
// first — the partial answer a caller can act on while the search is still
// running. After completion it matches Result.Best.
func (s *SearchHandle) TopK(n int) []Candidate {
	s.mu.Lock()
	cands := make([]Candidate, 0, s.completed)
	for _, ev := range s.history {
		if ev.Kind == EventCandidate {
			cands = append(cands, *ev.Candidate)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
	if n < len(cands) {
		cands = cands[:n]
	}
	return cands
}

// emit appends one event to the history and wakes subscribers.
func (s *SearchHandle) emit(ev Event) {
	s.mu.Lock()
	s.history = append(s.history, ev)
	// Only completed evaluations advance the counters: filtered events also
	// carry a Candidate payload but consumed no budget and have no score.
	if c := ev.Candidate; c != nil && ev.Kind == EventCandidate {
		s.completed++
		if c.Resumed {
			s.resumed++
		}
		if !s.hasBest || c.Score > s.best {
			s.best, s.hasBest = c.Score, true
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// emitFault adapts the scheduler's fault events into the public stream. It
// is called from pool slots and coordinator goroutines concurrently.
func (s *SearchHandle) emitFault(ev nas.FaultEvent) {
	s.emit(Event{Kind: EventFault, Fault: &FaultEvent{
		Kind:        FaultKind(ev.Kind),
		Worker:      ev.Worker,
		CandidateID: ev.CandidateID,
		Reason:      ev.Reason,
		Attempt:     ev.Attempt,
	}})
}

// finish records the outcome, closes the event stream and releases waiters.
func (s *SearchHandle) finish(res *Result, err error) {
	s.mu.Lock()
	s.res, s.err = res, err
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	close(s.done)
}

// run executes the search to completion. It owns every per-run resource:
// the application, the checkpoint store, the journal, and (when on a shared
// pool) the pool registration.
func (s *SearchHandle) run(ctx context.Context, client *nas.PoolClient) {
	if client != nil {
		defer client.Close()
	}
	opt := s.opt
	matcher, _ := core.MatcherByName(opt.Scheme) // Validate checked it
	dtype, _ := tensor.ParseDType(opt.DType)     // Validate checked it
	dataSeed := opt.DataSeed
	if dataSeed == 0 {
		dataSeed = opt.Seed
	}
	app, err := apps.New(opt.App, dataSeed, apps.Config{Data: data.Config{TrainN: opt.TrainN, ValN: opt.ValN}})
	if err != nil {
		s.finish(nil, err)
		return
	}
	if opt.SpaceJSON != "" || opt.SpaceFile != "" {
		space, err := loadCustomSpace(opt)
		if err != nil {
			s.finish(nil, err)
			return
		}
		if len(app.Dataset.InputShapes) != 1 {
			s.finish(nil, fmt.Errorf("swtnas: custom spaces need a single-input dataset; %q has %d inputs", opt.App, len(app.Dataset.InputShapes)))
			return
		}
		if !shapesEqual(space.InputShapes[0], app.Dataset.InputShapes[0]) {
			s.finish(nil, fmt.Errorf("swtnas: space input %v does not match dataset %q input %v",
				space.InputShapes[0], opt.App, app.Dataset.InputShapes[0]))
			return
		}
		app.Space = space
		app.Name = space.Name
	}
	var store checkpoint.Store
	switch {
	case opt.CheckpointDir != "":
		store, err = checkpoint.NewCASDiskStore(opt.CheckpointDir)
		if err != nil {
			s.finish(nil, err)
			return
		}
	case opt.JournalPath != "":
		// Journaling without an explicit checkpoint dir: keep the blobs in a
		// content-addressed store next to the journal, so the journal can
		// carry manifest records instead of a full checkpoint per candidate
		// and resume finds the blobs where the crashed run left them.
		store, err = checkpoint.NewCASDiskStore(opt.JournalPath + ".blobs")
		if err != nil {
			s.finish(nil, err)
			return
		}
	default:
		store = checkpoint.NewCASMemStore()
	}
	var strategy evo.Strategy
	if opt.MultiObjective {
		strategy = evo.NewParetoEvolution(app.Space, opt.PopulationSize, opt.SampleSize)
	} else {
		strategy = evo.NewRegularizedEvolution(app.Space, opt.PopulationSize, opt.SampleSize)
	}
	cfg := nas.Config{
		App:           app,
		Strategy:      strategy,
		Matcher:       matcher,
		DType:         dtype,
		Store:         store,
		Workers:       opt.Workers,
		KernelWorkers: opt.KernelWorkers,
		Budget:        opt.Budget,
		Seed:          opt.Seed,
		RetainTopK:    opt.RetainTopK,
	}
	if client != nil {
		cfg.Executor = client
	}
	var pf *proxy.Prefilter
	if opt.ProxyFilter {
		// Score proposals on a small fixed prefix of the training split: the
		// zero-cost proxies need only a minibatch, and a deterministic batch
		// keeps filter decisions reproducible across runs and crash-resume.
		n := app.Dataset.Train.N()
		if n > 16 {
			n = 16
		}
		pf, err = proxy.NewPrefilter(proxy.FilterConfig{
			Space: app.Space,
			Loss:  app.Space.Loss,
			Batch: app.Dataset.Train.Slice(0, n),
			Seed:  opt.Seed,
			Admit: opt.ProxyAdmit,
		})
		if err != nil {
			s.finish(nil, err)
			return
		}
		cfg.Prefilter = pf
		cfg.OnFiltered = func(fc proxy.FilteredCandidate) {
			s.emit(Event{Kind: EventFiltered, Candidate: &Candidate{
				ID:         -1,
				Arch:       fc.Arch,
				Params:     fc.Params,
				ParentID:   fc.ParentID,
				ProxyScore: fc.ProxyScore,
				Filtered:   true,
			}})
		}
	}
	resumed := 0
	if opt.JournalPath != "" {
		header := resilience.Header{
			App:            app.Name,
			Scheme:         nas.SchemeName(matcher),
			Space:          app.Space.Name,
			Seed:           opt.Seed,
			DataSeed:       dataSeed,
			Budget:         opt.Budget,
			Workers:        opt.Workers,
			Population:     opt.PopulationSize,
			Sample:         opt.SampleSize,
			TrainN:         opt.TrainN,
			ValN:           opt.ValN,
			ProxyFilter:    opt.ProxyFilter,
			ProxyAdmit:     opt.ProxyAdmit,
			MultiObjective: opt.MultiObjective,
		}
		if dtype != tensor.F64 {
			// Canonical spelling; F64 stays "" so pre-dtype journals keep
			// validating against default runs.
			header.DType = dtype.String()
		}
		if opt.Resume {
			j, rec, err := resilience.Open(opt.JournalPath)
			if err != nil {
				s.finish(nil, err)
				return
			}
			if err := rec.Header.Validate(header); err != nil {
				j.Close()
				s.finish(nil, err)
				return
			}
			cfg.Journal, cfg.Resume = j, rec
			resumed = len(rec.Records)
		} else {
			j, err := resilience.Create(opt.JournalPath, header)
			if err != nil {
				s.finish(nil, err)
				return
			}
			cfg.Journal = j
		}
		defer cfg.Journal.Close()
	}
	cfg.Progress = func(r nas.Result) {
		c := Candidate{
			ID:                r.ID,
			Arch:              r.Arch,
			Score:             r.Score,
			Params:            r.Params,
			ParentID:          r.ParentID,
			TransferredLayers: r.Transfer.Copied,
			TrainTime:         r.TrainTime,
			CheckpointBytes:   r.CheckpointBytes,
			CompletedAt:       r.CompletedAt,
			EvalTime:          r.EvalTime,
			QueueWait:         r.QueueWait,
			BestScore:         r.BestScore,
			Resumed:           r.Resumed,
			ProxyScore:        r.ProxyScore,
		}
		// The caller's callback stays synchronous with the scheduler (the
		// documented Progress contract); the event stream gets the same
		// candidate for subscribers.
		if opt.Progress != nil {
			opt.Progress(c)
		}
		s.emit(Event{Kind: EventCandidate, Candidate: &c})
	}
	var before *obs.Snapshot
	if opt.Metrics {
		obs.SetEnabled(true)
		before = obs.Take()
	}
	start := time.Now()
	tr, runErr := nas.Run(ctx, cfg)
	if tr == nil {
		s.finish(nil, runErr)
		return
	}
	// runErr is ctx.Err() here: the trace holds the candidates completed
	// before cancellation, and the partial Result is returned beside it.
	res := &Result{App: app.Name, Scheme: nas.SchemeName(matcher), app: app, store: store, tr: tr}
	best := math.Inf(-1)
	for i, r := range tr.Records {
		if r.Score > best {
			best = r.Score
		}
		res.Candidates = append(res.Candidates, Candidate{
			ID:                r.ID,
			Arch:              r.Arch,
			Score:             r.Score,
			Params:            r.Params,
			ParentID:          r.ParentID,
			TransferredLayers: r.TransferCopied,
			TrainTime:         r.TrainTime,
			CheckpointBytes:   r.CheckpointBytes,
			CompletedAt:       r.CompletedAt,
			EvalTime:          r.EvalTime,
			QueueWait:         r.QueueWait,
			BestScore:         best,
			Resumed:           i < resumed,
			ProxyScore:        r.ProxyScore,
		})
	}
	res.Summary = summarize(tr, time.Since(start), before, pf)
	res.Summary.Resumed = resumed
	s.finish(res, runErr)
}
