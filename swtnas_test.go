package swtnas

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func tinySearch(t *testing.T, scheme string) *Result {
	t.Helper()
	res, err := Search(SearchOptions{
		App: "nt3", Scheme: scheme, Budget: 10, Seed: 5,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestApplicationsAndSchemes(t *testing.T) {
	if len(Applications()) != 4 {
		t.Fatalf("Applications = %v", Applications())
	}
	if len(Schemes()) != 3 {
		t.Fatalf("Schemes = %v", Schemes())
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(SearchOptions{Budget: 1}); err == nil {
		t.Fatal("missing app must error")
	}
	if _, err := Search(SearchOptions{App: "nt3", Scheme: "nope", Budget: 1}); err == nil {
		t.Fatal("unknown scheme must error")
	}
	if _, err := Search(SearchOptions{App: "nt3", Budget: 0}); err == nil {
		t.Fatal("zero budget must error")
	}
	if _, err := Search(SearchOptions{App: "nope", Budget: 1}); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestSearchEndToEnd(t *testing.T) {
	res := tinySearch(t, "LCS")
	if res.App != "nt3" || res.Scheme != "LCS" {
		t.Fatalf("header = %s/%s", res.App, res.Scheme)
	}
	if len(res.Candidates) != 10 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	best := res.Best(3)
	if len(best) != 3 {
		t.Fatalf("best = %d", len(best))
	}
	if best[0].Score < best[1].Score || best[1].Score < best[2].Score {
		t.Fatalf("best not sorted by score: %v %v %v", best[0].Score, best[1].Score, best[2].Score)
	}
	desc, err := res.DescribeArch(best[0].Arch)
	if err != nil || desc == "" {
		t.Fatalf("describe: %q %v", desc, err)
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"records\"") {
		t.Fatal("trace JSON missing records")
	}
}

// TestSearchProgressStreams checks the Progress callback sees exactly the
// candidates the Result ends up holding, in the same completion order.
func TestSearchProgressStreams(t *testing.T) {
	var streamed []Candidate
	res, err := Search(SearchOptions{
		App: "nt3", Budget: 6, Seed: 7, Workers: 2,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		Progress: func(c Candidate) { streamed = append(streamed, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Candidates) {
		t.Fatalf("progress streamed %d candidates, result has %d", len(streamed), len(res.Candidates))
	}
	for i, c := range res.Candidates {
		if streamed[i].ID != c.ID || streamed[i].Score != c.Score {
			t.Fatalf("streamed[%d] = %+v, result candidate = %+v", i, streamed[i], c)
		}
	}
}

// TestSearchContextCancellation cancels mid-search and verifies the partial
// Result contract: SearchContext returns promptly with context.Canceled, the
// completed candidates are usable through the normal Result API, and
// Search's signature keeps working unchanged.
func TestSearchContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	res, err := SearchContext(ctx, SearchOptions{
		App: "nt3", Scheme: "LCS", Budget: 1000, Seed: 8, Workers: 2,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		Progress: func(c Candidate) {
			if c.ID >= 0 { // every completion counts; cancel on the first
				cancel()
			}
		},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled search must return the partial Result")
	}
	if len(res.Candidates) == 0 || len(res.Candidates) >= 1000 {
		t.Fatalf("partial result has %d candidates", len(res.Candidates))
	}
	// 1000 tiny candidates would still take far longer than the handful
	// completed before cancellation; a loose bound catches a search that
	// ignored the context without making the test timing-sensitive.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled search took %v", elapsed)
	}
	best := res.Best(1)
	if len(best) != 1 {
		t.Fatalf("partial result Best(1) = %d candidates", len(best))
	}
	if _, err := res.DescribeArch(best[0].Arch); err != nil {
		t.Fatalf("partial result DescribeArch: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatalf("partial result WriteTrace: %v", err)
	}
	// A pre-cancelled context yields an empty partial result.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	res2, err := SearchContext(pre, SearchOptions{
		App: "nt3", Budget: 5, Seed: 8, TrainN: 24, ValN: 12,
		PopulationSize: 4, SampleSize: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if res2 == nil || len(res2.Candidates) != 0 {
		t.Fatalf("pre-cancelled result = %+v", res2)
	}
}

func TestFullyTrain(t *testing.T) {
	res := tinySearch(t, "LP")
	best := res.Best(1)[0]
	full, err := res.FullyTrain(best)
	if err != nil {
		t.Fatal(err)
	}
	if full.Epochs < 1 || full.Epochs > 20 {
		t.Fatalf("epochs = %d", full.Epochs)
	}
}

func TestDiskCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	res, err := Search(SearchOptions{
		App: "nt3", Budget: 4, Seed: 6, TrainN: 24, ValN: 12,
		PopulationSize: 2, SampleSize: 2, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.FullyTrain(res.Best(1)[0]); err != nil {
		t.Fatalf("full training from disk checkpoints: %v", err)
	}
}

func TestMatcherHelpers(t *testing.T) {
	a := [][]int{{3, 3, 1, 8}, {8}, {128, 2}}
	b := [][]int{{3, 3, 1, 8}, {16}, {8}, {128, 2}}
	if got := LongestPrefix(a, b); got != 1 {
		t.Fatalf("LP = %d, want 1", got)
	}
	if got := LongestCommonSubsequence(a, b); got != 3 {
		t.Fatalf("LCS = %d, want 3", got)
	}
	if d := ArchDistance([]int{1, 2, 3}, []int{0, 2, 3}); d != 1 {
		t.Fatalf("d = %d, want 1", d)
	}
}

// TestWeightTransferBeatsScratchOnAverage is the library-level statement of
// the paper's headline claim at miniature scale: with the same budget and
// seed, the LCS scheme's later candidates score at least as well on average
// as the baseline's.
func TestWeightTransferBeatsScratchOnAverage(t *testing.T) {
	run := func(scheme string) float64 {
		res, err := Search(SearchOptions{
			App: "uno", Scheme: scheme, Budget: 24, Seed: 9,
			TrainN: 96, ValN: 48, PopulationSize: 8, SampleSize: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		n := 0
		for _, c := range res.Candidates[len(res.Candidates)/2:] {
			sum += c.Score
			n++
		}
		return sum / float64(n)
	}
	base, lcs := run("baseline"), run("LCS")
	if lcs < base-0.05 {
		t.Fatalf("LCS tail mean %.4f clearly below baseline %.4f", lcs, base)
	}
}

func TestSummarize(t *testing.T) {
	res := tinySearch(t, "baseline")
	var sb strings.Builder
	if err := res.Summarize(res.Best(1)[0], &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "total params:") {
		t.Fatalf("summary output:\n%s", sb.String())
	}
}
