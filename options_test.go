package swtnas

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateFieldErrors pins which field each rejection names, so CLI and
// server errors point at the right input.
func TestValidateFieldErrors(t *testing.T) {
	valid := SearchOptions{App: "nt3", Scheme: "LCS", Budget: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}

	cases := []struct {
		name  string
		mut   func(*SearchOptions)
		field string
	}{
		{"missing app", func(o *SearchOptions) { o.App = "" }, "App"},
		{"unknown app", func(o *SearchOptions) { o.App = "imagenet" }, "App"},
		{"unknown scheme", func(o *SearchOptions) { o.Scheme = "DTW" }, "Scheme"},
		{"zero budget", func(o *SearchOptions) { o.Budget = 0 }, "Budget"},
		{"negative budget", func(o *SearchOptions) { o.Budget = -1 }, "Budget"},
		{"negative workers", func(o *SearchOptions) { o.Workers = -2 }, "Workers"},
		{"negative kernel workers", func(o *SearchOptions) { o.KernelWorkers = -1 }, "KernelWorkers"},
		{"negative train n", func(o *SearchOptions) { o.TrainN = -1 }, "TrainN"},
		{"negative val n", func(o *SearchOptions) { o.ValN = -1 }, "ValN"},
		{"negative population", func(o *SearchOptions) { o.PopulationSize = -1 }, "PopulationSize"},
		{"negative sample", func(o *SearchOptions) { o.SampleSize = -1 }, "SampleSize"},
		{"negative retain", func(o *SearchOptions) { o.RetainTopK = -1 }, "RetainTopK"},
		{"sample exceeds population", func(o *SearchOptions) { o.PopulationSize = 4; o.SampleSize = 8 }, "SampleSize"},
		{"resume without journal", func(o *SearchOptions) { o.Resume = true }, "Resume"},
		{"weight without pool", func(o *SearchOptions) { o.Weight = 2 }, "Weight"},
		{"negative proxy admit", func(o *SearchOptions) { o.ProxyFilter = true; o.ProxyAdmit = -0.1 }, "ProxyAdmit"},
		{"proxy admit above one", func(o *SearchOptions) { o.ProxyFilter = true; o.ProxyAdmit = 1.5 }, "ProxyAdmit"},
		{"proxy admit without filter", func(o *SearchOptions) { o.ProxyAdmit = 0.5 }, "ProxyAdmit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := valid
			tc.mut(&opt)
			err := opt.Validate()
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			var ie *InvalidOptionError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %T %v, want *InvalidOptionError", err, err)
			}
			if ie.Field != tc.field {
				t.Fatalf("field = %q, want %q (err %v)", ie.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), "SearchOptions."+tc.field) {
				t.Fatalf("message %q does not name the field", err.Error())
			}
		})
	}
}

// TestSearchUsesValidate: the one-shot entry points reject through the same
// typed error, so callers can switch on the field regardless of entry point.
func TestSearchUsesValidate(t *testing.T) {
	_, err := Search(SearchOptions{App: "nt3", Scheme: "LCS"})
	var ie *InvalidOptionError
	if !errors.As(err, &ie) || ie.Field != "Budget" {
		t.Fatalf("Search error = %v, want InvalidOptionError on Budget", err)
	}
	_, err = New(SearchOptions{App: "bogus", Budget: 1})
	if !errors.As(err, &ie) || ie.Field != "App" {
		t.Fatalf("New error = %v, want InvalidOptionError on App", err)
	}
}
