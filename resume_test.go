package swtnas

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

func journalOpts(path string) SearchOptions {
	return SearchOptions{
		App: "nt3", Scheme: "LCS", Budget: 6, Seed: 5,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
		JournalPath: path,
	}
}

// TestSearchResumeMatchesUninterrupted is the public-API crash-resume
// guarantee: a journaled search cancelled partway, then resumed with the
// same options, ends with the same candidates and top-K as one that never
// stopped.
func TestSearchResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	fullPath := filepath.Join(dir, "full.swtj")
	full, err := Search(journalOpts(fullPath))
	if err != nil {
		t.Fatal(err)
	}

	// "Crash" a second run after 2 candidates via context cancellation.
	cutPath := filepath.Join(dir, "cut.swtj")
	ctx, cancel := context.WithCancel(context.Background())
	opts := journalOpts(cutPath)
	n := 0
	opts.Progress = func(Candidate) {
		n++
		if n == 2 {
			cancel()
		}
	}
	partial, err := SearchContext(ctx, opts)
	if err == nil {
		t.Fatal("cancelled search must return its context error")
	}
	if partial == nil || len(partial.Candidates) >= 6 {
		t.Fatalf("partial result = %+v", partial)
	}

	// Resume to completion.
	opts = journalOpts(cutPath)
	opts.Resume = true
	resumed, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Candidates) != 6 {
		t.Fatalf("resumed candidates = %d, want 6", len(resumed.Candidates))
	}
	if resumed.Summary.Resumed != len(partial.Candidates) {
		t.Fatalf("Summary.Resumed = %d, want %d (the journaled prefix)",
			resumed.Summary.Resumed, len(partial.Candidates))
	}
	for i := range full.Candidates {
		a, b := full.Candidates[i], resumed.Candidates[i]
		if a.ID != b.ID || a.Score != b.Score || fmt.Sprint(a.Arch) != fmt.Sprint(b.Arch) ||
			a.TransferredLayers != b.TransferredLayers {
			t.Fatalf("candidate %d differs:\n  full    %+v\n  resumed %+v", i, a, b)
		}
	}
	fb, rb := full.Best(3), resumed.Best(3)
	for i := range fb {
		if fb[i].ID != rb[i].ID || fb[i].Score != rb[i].Score {
			t.Fatalf("top-K differs at %d: %+v vs %+v", i, fb[i], rb[i])
		}
	}
	// The resumed run's checkpoints must support phase two.
	if _, err := resumed.FullyTrain(rb[0]); err != nil {
		t.Fatalf("FullyTrain after resume: %v", err)
	}
}

func TestSearchResumeValidatesOptions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.swtj")
	if _, err := Search(journalOpts(path)); err != nil {
		t.Fatal(err)
	}

	opts := journalOpts(path)
	opts.Resume = true
	opts.Seed = 6 // drifted option
	if _, err := Search(opts); err == nil {
		t.Fatal("resume with a different seed must fail")
	}

	opts = journalOpts("")
	opts.Resume = true
	if _, err := Search(opts); err == nil {
		t.Fatal("Resume without JournalPath must fail")
	}
}
