// Package swtnas is a neural-architecture-search library with selective
// weight transfer, a from-scratch Go reproduction of "Accelerating DNN
// Architecture Search at Scale Using Selective Weight Transfer"
// (Liu, Nicolae, Di, Cappello, Jog — IEEE CLUSTER 2021).
//
// Instead of estimating every NAS candidate by training it from random
// weights, the library checkpoints each evaluated candidate and initializes
// new candidates from the weights of structurally similar, previously
// evaluated ones. Two matchers align the "shape sequences" (ordered
// parameter-tensor shapes) of provider and receiver: LP (longest prefix)
// and LCS (longest common subsequence). Provider selection is free under
// regularized evolution: each child is a one-node mutation of its parent.
//
// The package exposes the high-level workflow:
//
//	res, err := swtnas.Search(swtnas.SearchOptions{App: "nt3", Scheme: "LCS", Budget: 200})
//	best := res.Best(10)
//	full, err := res.FullyTrain(best[0])
//
// Long-lived callers (the swtnas-server service, dashboards, schedulers)
// use the handle form of the same API: New validates options into a *Search,
// Start launches it, Events streams per-candidate progress, TopK reads the
// partial leaderboard mid-run, Cancel stops it, Wait collects the Result.
// Many concurrent searches can share one EvaluatorPool under weighted-fair
// scheduling with per-tenant admission quotas.
//
// Lower-level building blocks (the training stack, search spaces, the
// transfer engine, the cluster simulator, the experiment harness) live in
// internal packages; the cmd/ tools and examples/ programs show them in
// action.
package swtnas

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"swtnas/internal/apps"
	"swtnas/internal/checkpoint"
	"swtnas/internal/core"
	"swtnas/internal/data"
	"swtnas/internal/evo"
	"swtnas/internal/nas"
	"swtnas/internal/nn"
	"swtnas/internal/obs"
	"swtnas/internal/proxy"
	"swtnas/internal/search"
	"swtnas/internal/trace"
)

// Applications lists the built-in application names in the paper's order:
// cifar10, mnist, nt3, uno.
func Applications() []string { return data.Names() }

// Schemes lists the candidate-estimation schemes: baseline (train from
// scratch), LP and LCS (selective weight transfer).
func Schemes() []string { return []string{"baseline", "LP", "LCS"} }

// Candidate is one evaluated model of a search. The JSON field names are a
// stable wire schema shared with the serve layer's candidate events.
type Candidate struct {
	// ID is the candidate number; its checkpoint id is derived from it.
	ID int `json:"id"`
	// Arch is the architecture sequence (paper Section II).
	Arch []int `json:"arch"`
	// Score is the estimated objective metric from partial training.
	Score float64 `json:"score"`
	// Params is the trainable-parameter count.
	Params int `json:"params"`
	// ParentID is the weight-transfer provider (-1 for scratch).
	ParentID int `json:"parent_id"`
	// TransferredLayers counts layer groups warm-started from the parent.
	TransferredLayers int `json:"transferred_layers"`
	// TrainTime is the measured candidate-estimation training time.
	TrainTime time.Duration `json:"train_time"`
	// CheckpointBytes is the encoded checkpoint size.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// CompletedAt is the completion offset from search start.
	CompletedAt time.Duration `json:"completed_at"`
	// EvalTime is the end-to-end evaluation latency (build + transfer +
	// train + checkpoint); TrainTime is the training share alone.
	EvalTime time.Duration `json:"eval_time,omitempty"`
	// QueueWait is how long the candidate waited for a free evaluator.
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	// BestScore is the best score of any candidate completed so far,
	// including this one — the running best a Progress callback can use
	// for whole-search early stopping.
	BestScore float64 `json:"best_score"`
	// Resumed marks a candidate replayed from a crash-resume journal rather
	// than evaluated by this process.
	Resumed bool `json:"resumed,omitempty"`
	// ProxyScore is the admission score the proxy pre-filter gave this
	// candidate before training (zero in runs without ProxyFilter).
	ProxyScore float64 `json:"proxy_score,omitempty"`
	// Filtered marks a proposal the proxy pre-filter rejected before
	// training: it consumed no budget, has no checkpoint, and its ID is the
	// sentinel -1 (rejected proposals never receive candidate numbers).
	// Only filtered progress events carry it; Result.Candidates never does.
	Filtered bool `json:"filtered,omitempty"`
}

// LatencyStats is the compact count/mean/p50/p95/max form SearchSummary
// reports for one latency series.
type LatencyStats struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	Max   time.Duration `json:"max"`
}

// SearchSummary aggregates one search's telemetry. The counts and WallTime
// are always filled from the trace; the latency series and the Metrics
// document need SearchOptions.Metrics (they are zero/nil otherwise).
type SearchSummary struct {
	// WallTime is the end-to-end search duration.
	WallTime time.Duration `json:"wall_time"`
	// Candidates is the number of completed evaluations.
	Candidates int `json:"candidates"`
	// Resumed is how many of those were replayed from a crash-resume
	// journal rather than evaluated in this process (0 without Resume).
	Resumed int `json:"resumed,omitempty"`
	// BestScore is the best estimated score of the run.
	BestScore float64 `json:"best_score"`
	// Transferred and Scratch split the candidates by warm start.
	Transferred int `json:"transferred"`
	Scratch     int `json:"scratch"`
	// Eval and QueueWait summarize per-candidate end-to-end evaluation
	// latency and evaluator-queue wait.
	Eval      LatencyStats `json:"eval"`
	QueueWait LatencyStats `json:"queue_wait"`
	// Gemm summarizes the per-call latency of the GEMM kernels under all
	// of the run's training.
	Gemm LatencyStats `json:"gemm"`
	// Proxy reports the pre-filter's admission statistics; nil in runs
	// without SearchOptions.ProxyFilter.
	Proxy *ProxySummary `json:"proxy,omitempty"`
	// Metrics is the full metrics delta of the run — every counter, gauge
	// and histogram the process recorded between search start and end, in
	// the same JSON document shape the /debug/metrics endpoint serves.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// ProxySummary aggregates the proxy pre-filter's run statistics: how many
// proposals it scored, how the admission split fell, and how well the online
// surrogate tracked real scores. Score latency needs SearchOptions.Metrics.
type ProxySummary struct {
	// Proposals is how many mutation proposals the filter scored.
	Proposals int64 `json:"proposals"`
	// Admitted and Filtered split Proposals by the admission decision.
	Admitted int64 `json:"admitted"`
	Filtered int64 `json:"filtered"`
	// SurrogateRefits counts ridge-regression refits from the live trace.
	SurrogateRefits int64 `json:"surrogate_refits"`
	// SurrogateMAE is the mean absolute error of the surrogate's
	// predictions against the real scores observed after each prediction
	// (0 until the surrogate's first fit).
	SurrogateMAE float64 `json:"surrogate_mae"`
	// Score summarizes per-proposal zero-cost scoring latency (zero
	// without SearchOptions.Metrics).
	Score LatencyStats `json:"score"`
}

// Result is a finished candidate-estimation phase.
type Result struct {
	// App and Scheme echo the options.
	App, Scheme string
	// Candidates are in completion order.
	Candidates []Candidate
	// Summary aggregates the run's telemetry (latency series and metric
	// deltas populate when SearchOptions.Metrics is set).
	Summary *SearchSummary

	app   *apps.App
	store checkpoint.Store
	tr    *trace.Trace
}

// Search runs the candidate-estimation phase of NAS: regularized evolution
// proposes candidates, evaluators train each for the application's partial
// budget (warm-started from the parent's checkpoint when a transfer scheme
// is selected), and every candidate is checkpointed. It is
// SearchContext(context.Background(), opt): it always runs to budget.
func Search(opt SearchOptions) (*Result, error) {
	return SearchContext(context.Background(), opt)
}

// SearchContext is Search under a context. Cancelling ctx stops the search
// between candidate evaluations: candidates already training finish (and are
// included), queued proposals are dropped, and SearchContext returns the
// partial *Result of every candidate completed so far together with
// ctx.Err(). The partial Result supports the full API — Best, FullyTrain,
// WriteTrace — so an interrupted search still yields its top models. No
// evaluator goroutines are left running when SearchContext returns.
//
// It is New + Start + Wait: callers that need mid-run visibility (progress
// streams, partial top-K, cancellation by handle) use those directly.
func SearchContext(ctx context.Context, opt SearchOptions) (*Result, error) {
	s, err := New(opt)
	if err != nil {
		return nil, err
	}
	if err := s.Start(ctx); err != nil {
		return nil, err
	}
	return s.Wait()
}

// summarize builds the search summary from the trace, plus metric deltas
// when a pre-run snapshot was taken and proxy-filter statistics when the run
// used a pre-filter.
func summarize(tr *trace.Trace, wall time.Duration, before *obs.Snapshot, pf *proxy.Prefilter) *SearchSummary {
	s := &SearchSummary{WallTime: wall, Candidates: len(tr.Records)}
	if pf != nil {
		st := pf.Stats()
		s.Proxy = &ProxySummary{
			Proposals:       st.Proposals,
			Admitted:        st.Admitted,
			Filtered:        st.Filtered,
			SurrogateRefits: st.SurrogateRefits,
			SurrogateMAE:    st.SurrogateMAE,
		}
	}
	best := math.Inf(-1)
	for _, r := range tr.Records {
		if r.Score > best {
			best = r.Score
		}
		if r.TransferCopied > 0 {
			s.Transferred++
		} else {
			s.Scratch++
		}
	}
	if len(tr.Records) > 0 {
		s.BestScore = best
	}
	if before != nil {
		d := obs.Take().Delta(before)
		s.Eval = LatencyStats(d.DurationStatsOf("nas.eval.seconds"))
		s.QueueWait = LatencyStats(d.DurationStatsOf("nas.queue.wait.seconds"))
		s.Gemm = LatencyStats(d.DurationStatsOf("tensor.gemm.seconds"))
		if s.Proxy != nil {
			s.Proxy.Score = LatencyStats(d.DurationStatsOf("proxy.score.seconds"))
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err == nil {
			s.Metrics = json.RawMessage(buf.Bytes())
		}
	}
	return s
}

// Best returns the k highest-scoring candidates (the top-K set NAS would
// fully train).
func (r *Result) Best(k int) []Candidate {
	idx := r.tr.TopK(k)
	out := make([]Candidate, len(idx))
	for i, j := range idx {
		out[i] = r.Candidates[j]
	}
	return out
}

// ParetoFront returns the candidates no other candidate dominates under the
// two search objectives (score maximized, parameters minimized), in
// completion order — the accuracy×complexity trade-off curve a
// multi-objective run explores. It works on any Result, not only
// MultiObjective ones. Failed candidates never appear.
func (r *Result) ParetoFront() []Candidate {
	inds := make([]evo.Individual, 0, len(r.Candidates))
	for i, rec := range r.tr.Records {
		if rec.Failed {
			continue
		}
		inds = append(inds, evo.Individual{ID: i, Score: rec.Score, Params: rec.Params})
	}
	front := evo.ParetoFront(inds)
	out := make([]Candidate, len(front))
	for i, f := range front {
		out[i] = r.Candidates[f.ID]
	}
	return out
}

// DescribeArch renders the operation choices of an architecture sequence.
func (r *Result) DescribeArch(arch []int) (string, error) {
	return r.app.Space.Describe(arch)
}

// WriteTrace serializes the full search trace as JSON.
func (r *Result) WriteTrace(w io.Writer) error { return r.tr.WriteJSON(w) }

// Summarize writes a Keras-style layer/shape/parameter summary of a
// candidate's network.
func (r *Result) Summarize(c Candidate, w io.Writer) error {
	net, err := r.app.Space.Build(search.Arch(c.Arch), rand.New(rand.NewSource(int64(c.ID)+1)))
	if err != nil {
		return err
	}
	net.Summary(w)
	return nil
}

// FullTraining is the outcome of fully training a candidate (NAS phase 2).
type FullTraining struct {
	// Epochs is the number of epochs run before early stopping.
	Epochs int
	// EarlyStopped reports whether the paper's early-stopping rule fired.
	EarlyStopped bool
	// Score is the final objective metric.
	Score float64
}

// FullyTrain resumes a candidate from its checkpoint and trains it with the
// application's early-stopping rule (threshold per app, patience 2) up to
// the full budget of 20 epochs.
func (r *Result) FullyTrain(c Candidate) (*FullTraining, error) {
	ckpt, err := r.store.Load(nas.CandidateID(c.ID))
	if err != nil {
		return nil, err
	}
	net, err := r.app.Space.Build(search.Arch(c.Arch), rand.New(rand.NewSource(int64(c.ID)+1)))
	if err != nil {
		return nil, err
	}
	if err := ckpt.RestoreInto(net); err != nil {
		return nil, err
	}
	h, err := nn.Fit(net, r.app.Space.Loss, r.app.Space.Metric, nn.NewAdam(),
		r.app.Dataset.Train, r.app.Dataset.Val, nn.FitConfig{
			Epochs:            r.app.FullMaxEpochs,
			BatchSize:         r.app.Space.BatchSize,
			RNG:               rand.New(rand.NewSource(int64(c.ID) + 2)),
			EarlyStopDelta:    r.app.Space.EarlyStopDelta,
			EarlyStopPatience: r.app.EarlyStopPatience,
		})
	if err != nil {
		return nil, err
	}
	return &FullTraining{Epochs: h.EpochsRun, EarlyStopped: h.EarlyStopped, Score: h.FinalScore()}, nil
}

// loadCustomSpace resolves SpaceJSON/SpaceFile into a compiled space.
func loadCustomSpace(opt SearchOptions) (*search.Space, error) {
	var r io.Reader
	if opt.SpaceJSON != "" {
		r = strings.NewReader(opt.SpaceJSON)
	} else {
		f, err := os.Open(opt.SpaceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	spec, err := search.LoadSpec(r)
	if err != nil {
		return nil, err
	}
	return spec.Compile()
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LongestPrefix returns how many leading tensor shapes two shape sequences
// share — the LP matcher's transfer scope (paper Section IV-A).
func LongestPrefix(provider, receiver [][]int) int {
	return len(core.LP{}.Match(provider, receiver))
}

// LongestCommonSubsequence returns the LCS length of two shape sequences —
// the LCS matcher's transfer scope (paper Section IV-A).
func LongestCommonSubsequence(provider, receiver [][]int) int {
	return len(core.LCS{}.Match(provider, receiver))
}

// ArchDistance is the architecture distance d of Section V-A: the number of
// variable nodes on which two sequences differ (-1 for different lengths).
func ArchDistance(a, b []int) int {
	return search.Distance(search.Arch(a), search.Arch(b))
}
