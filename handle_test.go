package swtnas

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

func tinyOptions() SearchOptions {
	return SearchOptions{
		App: "nt3", Scheme: "LCS", Budget: 5, Seed: 9,
		TrainN: 24, ValN: 12, PopulationSize: 4, SampleSize: 2,
	}
}

// TestHandleLifecycle drives the full handle API over one search: Start,
// live Events, mid-run TopK, Wait — and checks the stream, the counters and
// the final Result agree.
func TestHandleLifecycle(t *testing.T) {
	s, err := New(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events() // subscribed before Start: sees everything live
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("second Start must fail")
	}
	var streamed []Candidate
	for ev := range events {
		if ev.Kind != EventCandidate || ev.Candidate == nil {
			t.Fatalf("unexpected event %+v", ev)
		}
		streamed = append(streamed, *ev.Candidate)
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Candidates) {
		t.Fatalf("streamed %d candidates != result's %d", len(streamed), len(res.Candidates))
	}
	if s.Completed() != 5 || s.Resumed() != 0 {
		t.Fatalf("completed = %d resumed = %d", s.Completed(), s.Resumed())
	}
	best, ok := s.BestScore()
	if !ok || best != res.Summary.BestScore {
		t.Fatalf("BestScore = %v %v, summary has %v", best, ok, res.Summary.BestScore)
	}
	// TopK after completion matches Result.Best.
	top := s.TopK(3)
	want := res.Best(3)
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("TopK = %+v\nBest = %+v", top, want)
	}
	// A late subscriber replays the whole history.
	var replayed int
	for ev := range s.Events() {
		if ev.Kind == EventCandidate {
			replayed++
		}
	}
	if replayed != 5 {
		t.Fatalf("late subscriber saw %d candidates, want 5", replayed)
	}
	// Wait is idempotent.
	res2, err2 := s.Wait()
	if res2 != res || err2 != nil {
		t.Fatal("repeated Wait returned a different outcome")
	}
}

// TestHandleCancelMidStream cancels through the handle while consuming the
// event stream and expects a partial result beside context.Canceled, with
// the stream closing cleanly.
func TestHandleCancelMidStream(t *testing.T) {
	opt := tinyOptions()
	opt.Budget = 1000
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for ev := range events {
		if ev.Kind != EventCandidate {
			continue
		}
		seen++
		if seen == 2 {
			s.Cancel()
		}
	}
	res, err := s.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Candidates) < 2 || len(res.Candidates) >= 1000 {
		t.Fatalf("partial result has %d candidates", len(res.Candidates))
	}
	if len(res.Candidates) != seen {
		t.Fatalf("stream saw %d candidates, result has %d", seen, len(res.Candidates))
	}
}

// TestHandleSharedPoolQuota: a pool admitting one search rejects the second
// with ErrQuotaExceeded from Start (and from Wait), then admits it once the
// first finishes.
func TestHandleSharedPoolQuota(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 2, MaxActiveSearches: 1})
	defer pool.Close()

	opt := tinyOptions()
	opt.Pool, opt.Tenant = pool, "a"
	first, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	opt2 := tinyOptions()
	opt2.Pool, opt2.Tenant = pool, "b"
	second, err := New(opt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Start(context.Background()); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Start = %v, want ErrQuotaExceeded", err)
	}
	if _, err := second.Wait(); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Wait = %v, want ErrQuotaExceeded", err)
	}

	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	// Slot freed: a fresh handle is admitted now.
	third, err := New(opt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := third.Start(context.Background()); err != nil {
		t.Fatalf("post-release Start = %v", err)
	}
	if _, err := third.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestHandleSharedPoolMatchesSolo: running on a shared pool changes where
// evaluations execute, not what the search computes — same seed, same trace.
func TestHandleSharedPoolMatchesSolo(t *testing.T) {
	solo, err := Search(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(PoolOptions{Workers: 2})
	defer pool.Close()
	opt := tinyOptions()
	opt.Pool, opt.Tenant = pool, "t"
	pooled, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Candidates) != len(pooled.Candidates) {
		t.Fatalf("candidates: %d vs %d", len(solo.Candidates), len(pooled.Candidates))
	}
	for i := range solo.Candidates {
		a, b := solo.Candidates[i], pooled.Candidates[i]
		if a.ID != b.ID || a.Score != b.Score || !reflect.DeepEqual(a.Arch, b.Arch) {
			t.Fatalf("candidate %d differs: solo %+v pooled %+v", i, a, b)
		}
	}
}

// TestCandidateJSONRoundTrip pins the wire schema of Candidate: field names
// are shared with the serve layer's candidate events, and the
// omitempty-elided fields must stay elided so traces and events compare
// byte for byte.
func TestCandidateJSONRoundTrip(t *testing.T) {
	c := Candidate{
		ID: 3, Arch: []int{1, 2, 0}, Score: 0.91, Params: 1234, ParentID: 1,
		TransferredLayers: 2, TrainTime: 5 * time.Millisecond,
		CheckpointBytes: 2048, CompletedAt: 7 * time.Millisecond,
		EvalTime: 6 * time.Millisecond, QueueWait: time.Millisecond,
		BestScore: 0.95, Resumed: true, ProxyScore: 1.75, Filtered: true,
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":3,"arch":[1,2,0],"score":0.91,"params":1234,"parent_id":1,` +
		`"transferred_layers":2,"train_time":5000000,"checkpoint_bytes":2048,` +
		`"completed_at":7000000,"eval_time":6000000,"queue_wait":1000000,` +
		`"best_score":0.95,"resumed":true,"proxy_score":1.75,"filtered":true}`
	if string(b) != want {
		t.Fatalf("schema drifted:\n got %s\nwant %s", b, want)
	}
	var back Candidate
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// Zero-valued optional fields disappear from the wire form.
	lean, err := json.Marshal(Candidate{ID: 1, Arch: []int{0}, ParentID: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"eval_time", "queue_wait", "resumed", "proxy_score", "filtered"} {
		if jsonHasField(t, lean, field) {
			t.Fatalf("zero %s serialized: %s", field, lean)
		}
	}
}

// TestSearchSummaryJSONRoundTrip pins SearchSummary's wire schema.
func TestSearchSummaryJSONRoundTrip(t *testing.T) {
	s := SearchSummary{
		WallTime: 3 * time.Second, Candidates: 10, Resumed: 4, BestScore: 0.88,
		Transferred: 7, Scratch: 3,
		Eval: LatencyStats{Count: 10, Mean: time.Second, P50: time.Second, P95: 2 * time.Second, Max: 2 * time.Second},
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back SearchSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", back, s)
	}
	for _, field := range []string{"wall_time", "candidates", "resumed", "best_score", "transferred", "scratch", "eval", "queue_wait", "gemm"} {
		if !jsonHasField(t, b, field) {
			t.Fatalf("field %s missing from %s", field, b)
		}
	}
	if jsonHasField(t, b, "metrics") {
		t.Fatalf("nil metrics serialized: %s", b)
	}
	if jsonHasField(t, b, "proxy") {
		t.Fatalf("nil proxy summary serialized: %s", b)
	}

	// With the pre-filter on, the proxy block appears and pins its own
	// field names (the serve layer forwards it verbatim).
	s.Proxy = &ProxySummary{Proposals: 20, Admitted: 10, Filtered: 10, SurrogateRefits: 2, SurrogateMAE: 0.03}
	pb, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var pm struct {
		Proxy map[string]json.RawMessage `json:"proxy"`
	}
	if err := json.Unmarshal(pb, &pm); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"proposals", "admitted", "filtered", "surrogate_refits", "surrogate_mae", "score"} {
		if _, ok := pm.Proxy[field]; !ok {
			t.Fatalf("proxy field %s missing from %s", field, pb)
		}
	}
}

// jsonHasField reports whether a marshalled object has a top-level key.
func jsonHasField(t *testing.T, b []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}
