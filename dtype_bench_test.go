// Dtype benchmarks: the float32 instantiations of the GEMM and Conv2D hot
// paths against their float64 twins, identical shapes and worker counts.
// The f32 path runs the SIMD-shaped kernels of internal/tensor/gemm_f32.go
// (4-lane SSE on amd64) instead of the scalar 2×4 micro-kernels, so it
// must clear at least 1.4x the f64 throughput at conv batch 32 — the
// pinned acceptance floor; measured ~1.7x for Conv2D fwd+bwd and ~5x for
// the raw GEMM on the committed bench box. The README's Performance table
// quotes these series; CI runs them with -benchtime 1x as a smoke test.
// See DESIGN.md §14.
package swtnas

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"swtnas/internal/nn"
	"swtnas/internal/parallel"
	"swtnas/internal/tensor"
)

// BenchmarkMatmulDtype measures the raw GEMM primitive per dtype:
// [256, 512] x [512, 256] at the full worker pool.
func BenchmarkMatmulDtype(b *testing.B) {
	prev := parallel.SetWorkers(runtime.NumCPU())
	defer parallel.SetWorkers(prev)
	rng := rand.New(rand.NewSource(24))
	x64, w64 := tensor.New(256, 512), tensor.New(512, 256)
	x64.RandNormal(rng, 1)
	w64.RandNormal(rng, 1)
	dst64 := tensor.New(256, 256)
	x32, w32 := tensor.Convert[float32](x64), tensor.Convert[float32](w64)
	dst32 := tensor.NewOf[float32](256, 256)
	b.Run("dtype=f64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulInto(dst64, x64, w64, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dtype=f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulInto(dst32, x32, w32, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConv2DDtype trains the CIFAR-sized convolution per dtype —
// forward plus backward through the im2col/GEMM lowering — at batch 1 and
// the batch the ≥1.4x f32 speedup target is stated for (32).
func BenchmarkConv2DDtype(b *testing.B) {
	prev := parallel.SetWorkers(runtime.NumCPU())
	defer parallel.SetWorkers(prev)
	for _, batch := range []int{1, 32} {
		rng := rand.New(rand.NewSource(21))
		c64 := nn.NewConv2D("cv", 3, 3, 8, 16, nn.Same, 0, rng)
		if _, err := c64.OutShape([][]int{{16, 16, 8}}); err != nil {
			b.Fatal(err)
		}
		net := nn.NewNetwork([]int{16, 16, 8})
		net.MustAdd(c64, nn.GraphInput(0))
		net32, err := nn.ConvertNetwork[float32](net)
		if err != nil {
			b.Fatal(err)
		}
		c32 := net32.Layers()[0].(*nn.Conv2DOf[float32])
		if _, err := c32.OutShape([][]int{{16, 16, 8}}); err != nil {
			b.Fatal(err)
		}
		x64 := tensor.New(batch, 16, 16, 8)
		x64.RandNormal(rng, 1)
		x32 := tensor.Convert[float32](x64)
		b.Run(fmt.Sprintf("dtype=f64/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := c64.Forward([]*tensor.Tensor{x64}, true)
				c64.Backward(out)
			}
		})
		b.Run(fmt.Sprintf("dtype=f32/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := c32.Forward([]*tensor.TensorOf[float32]{x32}, true)
				c32.Backward(out)
			}
		})
	}
}
